"""The :class:`OnlineSchism` controller: traffic in, placement deltas out.

Wiring of the online loop:

1. live transactions stream in as chunked batches (one code path with the
   offline trace pipeline, see :meth:`AccessTrace.iter_batches`);
2. each batch feeds the :class:`~repro.online.monitor.WorkloadMonitor`
   (statistics + drift detection) and the
   :class:`~repro.online.maintainer.IncrementalGraphMaintainer` (decayed
   graph deltas);
3. when the monitor reports drift, :meth:`OnlineSchism.adapt` freezes the
   maintained graph — with the read-hot tuples expanded into **replication
   stars** (decayed read/write ratios decide the candidates, mirroring the
   offline builder's §3.1 expansion) — warm-starts the
   :class:`~repro.online.repartitioner.BudgetedRepartitioner` from the
   deployed placement, and deploys the resulting replica sets: copies
   (one per added replica), then the routing update — an in-place entry
   delta for exact lookup backends, an atomic wholesale table swap
   otherwise — then drops of the stale replicas;
4. independently of cut drift, the **elastic policy**
   (:class:`ElasticOptions`) watches the monitor's decayed transaction
   rate and proposes growing or shrinking ``num_partitions``;
   :meth:`OnlineSchism.resize` re-seeds the k-way kernel at the new k and
   deploys through the same budgeted copy-before-drop path, pinning every
   tuple the lookup table routed implicitly (a resize changes the hash
   default policy's modulus, so implicit placements must become explicit
   or those tuples would become unreachable).

Tuples that the maintained graph has decayed out of keep their deployed
placement untouched (except during a resize, which must touch every
implicitly-routed tuple for the reachability reason above).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.catalog.tuples import TupleId
from repro.core.strategies import LookupTablePartitioning, hash_home
from repro.distributed.cluster import Cluster
from repro.distributed.faults import FaultInjector
from repro.graph.assignment import PartitionAssignment
from repro.online.maintainer import IncrementalGraphMaintainer, MaintainerOptions
from repro.online.migration import (
    FileJournalSink,
    JournaledMigrator,
    LiveMigrator,
    MemoryJournalSink,
    MigrationJournal,
    MigrationPlan,
    MigrationReport,
    plan_migration,
)
from repro.obs import DEFAULT_BUCKETS, RATE_BUCKETS, get_telemetry
from repro.online.monitor import DriftReport, MonitorOptions, WorkloadMonitor
from repro.online.repartitioner import (
    BudgetedRepartitioner,
    RepartitionOptions,
    RepartitionResult,
    ReplicatedRepartitionResult,
    repartition_from_scratch,
)
from repro.routing.router import Router
from repro.workload.rwsets import AccessTrace
from repro.workload.trace import TransactionAccess, iter_chunks


@dataclass
class ElasticOptions:
    """Drift-triggered elastic scaling of ``num_partitions``.

    The policy watches the monitor's decayed transactions-per-epoch rate and
    sizes the cluster so each partition carries about
    ``target_rate_per_partition``: it proposes ``ceil(rate / target)``
    partitions, but only once the implied count leaves the
    ``[shrink_hysteresis * k, grow_hysteresis * k]`` dead band around the
    current ``k`` (hysteresis prevents flapping on noisy load).  Disabled by
    default — elasticity migrates data, so it must be an explicit choice.
    """

    #: master switch; when False :meth:`propose` never fires.
    enabled: bool = False
    #: desired decayed transactions-per-epoch load per partition.
    target_rate_per_partition: float = 100.0
    #: grow only when the ideal partition count exceeds ``k`` times this.
    grow_hysteresis: float = 1.3
    #: shrink only when the ideal partition count falls below ``k`` times this.
    shrink_hysteresis: float = 0.6
    #: never shrink below / grow above these bounds.
    min_partitions: int = 1
    max_partitions: int = 64
    #: suppress further resize proposals for this many batches after one.
    cooldown_batches: int = 4

    def __post_init__(self) -> None:
        if self.target_rate_per_partition <= 0:
            raise ValueError("target_rate_per_partition must be positive")
        if self.grow_hysteresis < 1.0:
            raise ValueError("grow_hysteresis must be at least 1.0")
        if not 0.0 < self.shrink_hysteresis < 1.0:
            raise ValueError("shrink_hysteresis must be in (0, 1)")
        if not 1 <= self.min_partitions <= self.max_partitions:
            raise ValueError("need 1 <= min_partitions <= max_partitions")

    def propose(self, rate: float, num_partitions: int) -> int | None:
        """The partition count the current load calls for (None = keep ``k``).

        >>> policy = ElasticOptions(enabled=True, target_rate_per_partition=100.0)
        >>> policy.propose(rate=450.0, num_partitions=2)
        5
        >>> policy.propose(rate=210.0, num_partitions=2)  # inside the dead band
        >>> policy.propose(rate=40.0, num_partitions=4)
        1
        """
        if not self.enabled:
            return None
        ideal = rate / self.target_rate_per_partition
        if (
            ideal > num_partitions * self.grow_hysteresis
            or ideal < num_partitions * self.shrink_hysteresis
        ):
            proposed = max(self.min_partitions, min(self.max_partitions, math.ceil(ideal)))
            if proposed != num_partitions:
                return proposed
        return None


@dataclass
class PacingOptions:
    """SLO-aware pacing of an in-flight migration.

    The pacer watches the live traffic's latency and abort-rate over sliding
    windows and converts them into a per-tick step budget for the journaled
    migrator: full speed while both stay inside budget, a throttled trickle
    when latency nears its budget, and a full pause — with exponential
    backoff — once either budget is exceeded.  Budgets default to ``None``
    (that signal unconstrained); a pacer with no budgets always grants
    ``max_steps``.
    """

    #: sliding window of committed-transaction latencies (p99 source).
    latency_window: int = 128
    #: sliding window of attempt outcomes (abort-rate source).
    abort_window: int = 256
    #: pause when the windowed p99 latency proxy exceeds this.
    p99_latency_budget: float | None = None
    #: pause when the windowed abort rate exceeds this.
    abort_rate_budget: float | None = None
    #: no pacing decisions until this many latency samples arrived.
    min_samples: int = 16
    #: throttle once p99 latency crosses this fraction of its budget.
    pressure_ratio: float = 0.75
    #: step budget granted per tick while traffic is healthy.
    max_steps: int = 64
    #: step budget granted per tick under pressure (but inside budget).
    throttled_steps: int = 8
    #: ticks the first pause lasts; doubles per consecutive over-budget
    #: decision up to ``backoff_max`` (exponential backoff), resets once
    #: the windows recover.
    backoff_initial: int = 1
    backoff_max: int = 16

    def __post_init__(self) -> None:
        if self.latency_window <= 0 or self.abort_window <= 0:
            raise ValueError("pacing windows must be positive")
        if self.min_samples <= 0:
            raise ValueError("min_samples must be positive")
        if not 0.0 < self.pressure_ratio <= 1.0:
            raise ValueError("pressure_ratio must be in (0, 1]")
        if self.abort_rate_budget is not None and not 0.0 < self.abort_rate_budget <= 1.0:
            raise ValueError("abort_rate_budget must be in (0, 1]")
        if self.p99_latency_budget is not None and self.p99_latency_budget <= 0.0:
            raise ValueError("p99_latency_budget must be positive")
        if self.max_steps <= 0 or self.throttled_steps <= 0:
            raise ValueError("step budgets must be positive")
        if self.throttled_steps > self.max_steps:
            raise ValueError("throttled_steps must not exceed max_steps")
        if not 1 <= self.backoff_initial <= self.backoff_max:
            raise ValueError("need 1 <= backoff_initial <= backoff_max")


@dataclass(frozen=True)
class PacerSnapshot:
    """Read-only view of a :class:`MigrationPacer`'s window state.

    What ``repro status`` renders and what tests assert on — the pacer's
    sliding windows and backoff state without reaching into private fields.
    """

    p99_latency: float
    abort_rate: float
    latency_samples: int
    abort_samples: int
    p99_latency_budget: float | None
    abort_rate_budget: float | None
    paused: bool
    pause_remaining: int
    backoff: int
    #: budget granted by the most recent :meth:`MigrationPacer.plan_steps`
    #: call (None before the first call).
    last_budget: int | None
    proceeds: int
    throttles: int
    pauses: int
    resumes: int


class MigrationPacer:
    """Turns live traffic health into a per-tick migration step budget.

    Feed it every :class:`~repro.distributed.coordinator.TransactionOutcome`
    via :meth:`observe`; each :meth:`plan_steps` call then answers "how many
    migration steps may run this tick" — 0 while paused.  Decision counters
    (``proceeds`` / ``throttles`` / ``pauses`` / ``resumes``) feed the
    resilience experiment's "pacing demonstrably reacted" assertion;
    :meth:`snapshot` exposes the whole window state read-only.
    """

    def __init__(
        self, options: PacingOptions | None = None, *, volatile: bool = False
    ) -> None:
        self.options = options or PacingOptions()
        self._latencies: deque[float] = deque(maxlen=self.options.latency_window)
        self._aborts: deque[int] = deque(maxlen=self.options.abort_window)
        self._backoff = self.options.backoff_initial
        self._pause_remaining = 0
        self._paused = False
        self._last_budget: int | None = None
        self.proceeds = 0
        self.throttles = 0
        self.pauses = 0
        self.resumes = 0
        metrics = get_telemetry().metrics
        # ``volatile=True`` keeps this pacer's histogram observations out of
        # deterministic metric snapshots — the real-storage migration feeds
        # it wall-clock latencies, which must never reach a byte-compared
        # export.  (The simulated pacer's inputs are virtual-time proxies,
        # so it stays in the default snapshot.)
        self._decisions = metrics.counter(
            "pacer.decisions",
            "pacing decisions per plan_steps call",
            labels=("decision",),
            volatile=volatile,
        )
        self._p99_histogram = metrics.histogram(
            "pacer.p99_latency",
            "windowed p99 latency proxy at each pacing decision",
            buckets=DEFAULT_BUCKETS,
            volatile=volatile,
        )
        self._abort_histogram = metrics.histogram(
            "pacer.abort_rate",
            "windowed abort rate at each pacing decision",
            buckets=RATE_BUCKETS,
            volatile=volatile,
        )

    def snapshot(self) -> PacerSnapshot:
        """The current window state as a read-only :class:`PacerSnapshot`."""
        return PacerSnapshot(
            p99_latency=self.p99_latency(),
            abort_rate=self.abort_rate(),
            latency_samples=len(self._latencies),
            abort_samples=len(self._aborts),
            p99_latency_budget=self.options.p99_latency_budget,
            abort_rate_budget=self.options.abort_rate_budget,
            paused=self._paused,
            pause_remaining=self._pause_remaining,
            backoff=self._backoff,
            last_budget=self._last_budget,
            proceeds=self.proceeds,
            throttles=self.throttles,
            pauses=self.pauses,
            resumes=self.resumes,
        )

    def observe(self, outcome) -> None:
        """Record one transaction attempt (committed or aborted)."""
        self._aborts.append(1 if outcome.aborted else 0)
        if not outcome.aborted:
            self._latencies.append(outcome.latency)

    def record(self, latency: float, aborted: bool = False) -> None:
        """Record a raw (latency, aborted) sample without an outcome object."""
        self._aborts.append(1 if aborted else 0)
        if not aborted:
            self._latencies.append(latency)

    def p99_latency(self) -> float:
        """Windowed p99 of the committed-transaction latency proxy."""
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        index = max(0, math.ceil(0.99 * len(ordered)) - 1)
        return ordered[index]

    def abort_rate(self) -> float:
        """Windowed fraction of attempts that aborted."""
        if not self._aborts:
            return 0.0
        return sum(self._aborts) / len(self._aborts)

    def _pressure(self) -> tuple[bool, bool]:
        """(over budget, near budget) for the current windows."""
        options = self.options
        if len(self._latencies) + sum(self._aborts) < options.min_samples:
            return False, False
        over = False
        near = False
        if options.p99_latency_budget is not None:
            p99 = self.p99_latency()
            if p99 > options.p99_latency_budget:
                over = True
            elif p99 > options.pressure_ratio * options.p99_latency_budget:
                near = True
        if options.abort_rate_budget is not None:
            if self.abort_rate() > options.abort_rate_budget:
                over = True
        return over, near

    def plan_steps(self, idle: bool = False) -> int:
        """Migration step budget for this tick (0 = paused).

        ``idle=True`` declares that no live traffic is flowing (a drain
        phase after the workload ended): with nothing to protect, the
        budget opens fully regardless of the frozen windows — otherwise a
        window that ended over budget would pause a drain forever, since
        no new observations can ever slide it back under.
        """
        self._p99_histogram.observe(self.p99_latency())
        self._abort_histogram.observe(self.abort_rate())
        budget, decision = self._decide(idle)
        self._decisions.inc(decision=decision)
        self._last_budget = budget
        return budget

    def _decide(self, idle: bool) -> tuple[int, str]:
        """(step budget, decision label) for this tick; mutates the windows."""
        if idle:
            if self._paused:
                self._paused = False
                self.resumes += 1
            self._pause_remaining = 0
            self._backoff = self.options.backoff_initial
            self.proceeds += 1
            return self.options.max_steps, "proceed"
        if self._pause_remaining > 0:
            self._pause_remaining -= 1
            self.pauses += 1
            return 0, "pause"
        over, near = self._pressure()
        if over:
            # Budget exceeded: pause, and double the next pause while the
            # pressure keeps coming back (exponential backoff).
            self.pauses += 1
            self._paused = True
            self._pause_remaining = self._backoff
            self._backoff = min(self.options.backoff_max, self._backoff * 2)
            return 0, "pause"
        if near:
            self.throttles += 1
            return self.options.throttled_steps, "throttle"
        if self._paused:
            self._paused = False
            self.resumes += 1
            decision = "resume"
        else:
            decision = "proceed"
        self._backoff = self.options.backoff_initial
        self.proceeds += 1
        return self.options.max_steps, decision


@dataclass
class OnlineOptions:
    """Configuration of the online adaptivity loop."""

    monitor: MonitorOptions = field(default_factory=MonitorOptions)
    maintainer: MaintainerOptions = field(default_factory=MaintainerOptions)
    repartition: RepartitionOptions = field(default_factory=RepartitionOptions)
    elastic: ElasticOptions = field(default_factory=ElasticOptions)
    #: SLO-aware migration pacing; None runs migrations unpaced.  When set,
    #: :meth:`OnlineSchism.begin_resize` builds a :class:`MigrationPacer`
    #: from it for every session that is not handed one explicitly.
    pacing: PacingOptions | None = None
    #: transactions per ingest batch (= one monitor/maintainer epoch).
    batch_size: int = 100
    #: migration cost per tuple: "tuples" (1 each) or "bytes" (schema row size).
    move_cost: str = "tuples"
    #: lookup-table backend rebuilt at swap time.
    lookup_backend: str = "dict"
    #: suppress re-adaptation for this many batches after an adaptation.
    cooldown_batches: int = 2
    #: widen read-hot tuples into replica sets during adaptation.  Candidates
    #: must clear every one of the three thresholds below.
    replication_enabled: bool = True
    #: minimum decayed read fraction for a tuple to be replication-worthy
    #: (0.9 mirrors the paper's "read-mostly" bar of < 10% writes).
    replication_min_read_fraction: float = 0.9
    #: at most this many tuples are star-expanded per adaptation.
    replication_max_candidates: int = 64
    #: minimum decayed access weight — cold tuples never earn a replica.
    replication_min_weight: float = 2.0
    #: retention hysteresis: a tuple that is *already replicated* stays a
    #: candidate down to ``replication_min_read_fraction`` minus this slack,
    #: so decay noise around the entry bar cannot trigger drop/re-copy churn
    #: of replicas the budget just paid for.  (The min-cut still consolidates
    #: retained candidates whose replicas stop earning their write cost.)
    replication_retention_slack: float = 0.05

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.move_cost not in ("tuples", "bytes"):
            raise ValueError("move_cost must be 'tuples' or 'bytes'")
        if not 0.0 <= self.replication_min_read_fraction <= 1.0:
            raise ValueError("replication_min_read_fraction must be in [0, 1]")
        if self.replication_max_candidates < 0:
            raise ValueError("replication_max_candidates must be non-negative")
        if self.replication_retention_slack < 0:
            raise ValueError("replication_retention_slack must be non-negative")


@dataclass
class AdaptationRecord:
    """Everything produced by one adaptation (re-partition + migration)."""

    trigger: DriftReport | None
    repartition: RepartitionResult | ReplicatedRepartitionResult
    plan: MigrationPlan
    migration: MigrationReport
    distributed_fraction_before: float
    distributed_fraction_after: float

    @property
    def replicated_count(self) -> int:
        """Tuples the adaptation left on more than one partition (0 = none)."""
        if isinstance(self.repartition, ReplicatedRepartitionResult):
            return self.repartition.replicated_count
        return 0

    def describe(self) -> str:
        """One-line summary for logs and experiment reports."""
        return (
            f"adaptation: moved {self.repartition.num_moved} nodes "
            f"(cost {self.repartition.migration_cost:.0f}, "
            f"{self.replicated_count} replicated), "
            f"cut {self.repartition.cut_before:.0f} -> {self.repartition.cut_after:.0f}, "
            f"distributed {self.distributed_fraction_before:.1%} -> "
            f"{self.distributed_fraction_after:.1%}"
        )


@dataclass
class ResizeRecord:
    """Everything produced by one elastic resize (grow or shrink)."""

    old_partitions: int
    new_partitions: int
    #: the decayed transaction rate that triggered the proposal (None when
    #: :meth:`OnlineSchism.resize` was called directly).
    trigger_rate: float | None
    #: None when the record comes from a migration resumed off a journal,
    #: where the planning-time repartition context no longer exists.
    repartition: ReplicatedRepartitionResult | None
    plan: MigrationPlan
    migration: MigrationReport
    #: previously implicitly-routed tuples pinned to explicit entries.
    tuples_pinned: int

    @property
    def grew(self) -> bool:
        """Whether the cluster gained partitions."""
        return self.new_partitions > self.old_partitions

    def describe(self) -> str:
        """One-line summary for logs and experiment reports."""
        direction = "grow" if self.grew else "shrink"
        return (
            f"resize ({direction}): {self.old_partitions} -> {self.new_partitions} "
            f"partitions, {self.migration.copies} copies, {self.migration.drops} drops, "
            f"{self.tuples_pinned} pinned"
        )


class MigrationSession:
    """One in-flight journaled resize the controller interleaves with traffic.

    Created by :meth:`OnlineSchism.begin_resize`, the session owns a
    :class:`~repro.online.migration.JournaledMigrator` and advances it one
    paced batch per :meth:`tick` — the call a traffic loop makes between
    transactions, so migration work and live load share one thread
    deterministically.  When a :class:`MigrationPacer` is attached, its
    step budget gates every tick (0 = the migration holds still while the
    SLO recovers).

    The session also owns *finalisation*: the first tick that observes a
    terminal journal state performs the controller bookkeeping the old
    synchronous ``resize`` did (monitor rebaseline, :class:`ResizeRecord`,
    cooldowns) — including when the terminal state was reached by a
    different process and this session merely resumed the journal.
    """

    def __init__(
        self,
        controller: "OnlineSchism",
        journal: MigrationJournal,
        *,
        trigger_rate: float | None = None,
        repartition: ReplicatedRepartitionResult | None = None,
        sink: MemoryJournalSink | FileJournalSink | None = None,
        pacer: MigrationPacer | None = None,
        injector: FaultInjector | None = None,
        batch_size: int | None = None,
    ) -> None:
        if journal.kind != "resize":
            raise ValueError("MigrationSession drives resize journals")
        self.controller = controller
        self.journal = journal
        self.trigger_rate = trigger_rate
        self.repartition = repartition
        self.pacer = pacer
        self.migrator = JournaledMigrator(
            controller.cluster,
            controller.router,
            journal,
            sink=sink,
            batch_size=batch_size or controller.migrator.batch_size,
            injector=injector,
        )
        self.record: ResizeRecord | None = None
        self.ticks = 0
        self.steps_executed = 0
        self._finalized = False
        if journal.is_terminal:
            self._finalize()

    @property
    def report(self) -> MigrationReport:
        """Execution report of (this attempt at) the migration."""
        return self.migrator.report

    @property
    def done(self) -> bool:
        """Whether the journal reached a terminal state."""
        return self.journal.is_terminal

    def tick(self, idle: bool = False) -> int:
        """Advance the migration by one paced batch; returns steps executed.

        ``idle=True`` tells the pacer no live traffic is flowing (drain
        phase), which releases any pause — see
        :meth:`MigrationPacer.plan_steps`.
        """
        if self.journal.is_terminal:
            self._finalize()
            return 0
        self.ticks += 1
        budget: int | None = None
        if self.pacer is not None:
            budget = self.pacer.plan_steps(idle=idle)
            if budget == 0:
                return 0
        tracer = get_telemetry().tracer
        with tracer.span(
            "migration.tick", state=self.journal.state, budget=budget
        ) as span:
            executed = self.migrator.step(budget)
            span.set_attribute("executed", executed)
        self.steps_executed += executed
        if self.journal.is_terminal:
            self._finalize()
        return executed

    def cancel(self) -> None:
        """Switch the migration onto the rollback branch (see the journal)."""
        self.migrator.cancel()

    def run_to_completion(self, max_ticks: int = 1_000_000) -> ResizeRecord | None:
        """Tick to a terminal state; the record (None when cancelled).

        There is no interleaved traffic here, so every tick is an *idle*
        tick: the pacer has nothing to protect and opens the full budget —
        the loop always terminates unless a fault injector keeps a
        required node down past ``max_ticks``.
        """
        for _ in range(max_ticks):
            if self.journal.is_terminal:
                break
            self.tick(idle=True)
        else:
            raise RuntimeError(
                f"migration did not terminate: {self.journal.progress_summary()}"
            )
        self._finalize()
        return self.record

    def _finalize(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        self.record = self.controller._finish_resize(self)


@dataclass
class ObservationResult:
    """Outcome of streaming a trace through the controller."""

    batches: int = 0
    transactions: int = 0
    drift_reports: list[DriftReport] = field(default_factory=list)
    adaptations: list[AdaptationRecord] = field(default_factory=list)
    resizes: list[ResizeRecord] = field(default_factory=list)


class OnlineSchism:
    """Controller closing the loop from live traffic back to placement.

    Feed it traffic with :meth:`observe` (fixed-size epochs) or
    :meth:`observe_batches` (caller-defined epochs, which lets the elastic
    policy see the offered load); it detects drift, adapts the placement
    under a migration budget (:meth:`adapt` — replication-aware: read-hot
    tuples widen into replica sets), and scales the partition count
    (:meth:`resize`) when the elastic policy proposes it.

    Parameters
    ----------
    cluster:
        The running shared-nothing cluster the data physically lives in.
        Resizes grow/shrink this cluster in place.
    router:
        The deployed router; its strategy must be a
        :class:`LookupTablePartitioning` (fine-grained placement is what
        live migration updates).  A resize republishes strategy and lookup
        table wholesale via :meth:`Router.replace_strategy`.
    options:
        Loop configuration (:class:`OnlineOptions`): monitor / maintainer /
        repartition knobs, the ``replication_*`` thresholds and the
        :class:`ElasticOptions` policy.
    """

    def __init__(
        self,
        cluster: Cluster,
        router: Router,
        options: OnlineOptions | None = None,
    ) -> None:
        if not isinstance(router.strategy, LookupTablePartitioning):
            raise TypeError("OnlineSchism requires a lookup-table routing strategy")
        if cluster.num_partitions != router.num_partitions:
            raise ValueError("cluster and router disagree on the number of partitions")
        self.cluster = cluster
        self.router = router
        #: the PartitionPlan this deployment came from (set by
        #: ``start_online``); :meth:`export_plan` carries its routing
        #: config forward so a deploy/export cycle with no adaptations
        #: round-trips the artifact.
        self.source_plan: "PartitionPlan | None" = None
        self.options = options or OnlineOptions()
        self.monitor = WorkloadMonitor(self.options.monitor, router.strategy)
        self.maintainer = IncrementalGraphMaintainer(self.options.maintainer)
        self.migrator = LiveMigrator(cluster)
        self.adaptations: list[AdaptationRecord] = []
        self.resizes: list[ResizeRecord] = []
        self._cooldown = 0
        self._elastic_cooldown = 0
        metrics = get_telemetry().metrics
        self._adapt_counter = metrics.counter(
            "online.adaptations", "drift-triggered placement adaptations"
        )
        self._resize_counter = metrics.counter(
            "online.resizes", "elastic resize migrations planned", labels=("direction",)
        )

    @property
    def strategy(self) -> LookupTablePartitioning:
        """The deployed fine-grained strategy (shared with the router)."""
        strategy = self.router.strategy
        assert isinstance(strategy, LookupTablePartitioning)
        return strategy

    @property
    def num_partitions(self) -> int:
        """Number of partitions of the deployed placement."""
        return self.router.num_partitions

    # -- ingest -----------------------------------------------------------------------
    def warm_up(self, trace: AccessTrace | Iterable[TransactionAccess]) -> None:
        """Seed monitor and maintainer from the training trace, then baseline.

        Gives the online loop the same starting knowledge the offline
        pipeline trained on: the maintained graph starts as the (decayed)
        training graph instead of empty, and the drift baseline reflects
        steady-state traffic.
        """
        accesses = trace.accesses if isinstance(trace, AccessTrace) else trace
        for batch in iter_chunks(accesses, self.options.batch_size):
            self.monitor.ingest_batch(batch)
            self.maintainer.apply_batch(batch)
        self.monitor.set_baseline()

    def observe(
        self,
        trace: AccessTrace | Iterable[TransactionAccess],
        auto_adapt: bool = True,
    ) -> ObservationResult:
        """Stream live traffic through the loop, adapting on drift.

        ``trace`` may be a recorded :class:`AccessTrace` or any iterable of
        transaction accesses (a live feed); it is consumed in
        ``batch_size`` chunks.  Because the re-chunking makes the monitor's
        transactions-per-epoch rate a constant (~``batch_size``), elastic
        proposals are **suppressed** here — a constant is not a load signal,
        and acting on it would resize the cluster to fit a config value.
        Feed :meth:`observe_batches` real arrival batches to drive
        elasticity.
        """
        accesses = trace.accesses if isinstance(trace, AccessTrace) else trace
        return self.observe_batches(
            iter_chunks(accesses, self.options.batch_size),
            auto_adapt,
            elastic=False,
        )

    def observe_batches(
        self,
        batches: Iterable[list[TransactionAccess]],
        auto_adapt: bool = True,
        elastic: bool = True,
    ) -> ObservationResult:
        """Stream pre-batched live traffic; each batch is one monitor epoch.

        The batch boundaries are the loop's notion of *time*: a live feed
        that hands over whatever arrived in a tick makes the monitor's
        transactions-per-epoch rate track the offered load, which is the
        signal the elastic policy scales ``num_partitions`` by.  ``elastic``
        gates those proposals; :meth:`observe` passes False because its
        fixed re-chunking produces a meaningless constant rate.
        """
        elastic_options = self.options.elastic if elastic else None
        result = ObservationResult()
        for batch in batches:
            self.monitor.ingest_batch(batch)
            self.maintainer.apply_batch(batch)
            result.batches += 1
            result.transactions += len(batch)
            # Elastic scaling watches offered load, not placement quality, so
            # it is checked regardless of the adaptation cooldown (with its
            # own, separate cooldown).
            if self._elastic_cooldown > 0:
                self._elastic_cooldown -= 1
            elif auto_adapt and elastic_options is not None:
                proposal = elastic_options.propose(
                    self.monitor.transaction_rate(), self.num_partitions
                )
                if proposal is not None:
                    result.resizes.append(
                        self.resize(proposal, trigger_rate=self.monitor.transaction_rate())
                    )
                    # The resize already re-partitioned and re-baselined at
                    # the new k; a same-batch adaptation would be redundant.
                    continue
            if self._cooldown > 0:
                self._cooldown -= 1
                continue
            report = self.monitor.check_drift()
            result.drift_reports.append(report)
            if report.drifted and auto_adapt:
                result.adaptations.append(self.adapt(report))
        return result

    # -- adaptation -------------------------------------------------------------------
    def current_node_assignment(self) -> tuple[list[int], list[float]]:
        """Warm-start node assignment + per-node move costs for the maintained graph.

        Each node maps to the (deterministically chosen) minimum partition of
        its tuple's deployed placement — including tuples placed by the
        lookup table's default policy, which is where they physically live.
        """
        strategy = self.strategy
        use_bytes = self.options.move_cost == "bytes"
        database = self.cluster.partition_databases[0]
        warm: list[int] = []
        costs: list[float] = []
        for tuple_id in self.maintainer.tuples():
            warm.append(min(strategy.partitions_for_tuple(tuple_id)))
            costs.append(float(database.tuple_byte_size(tuple_id)) if use_bytes else 1.0)
        return warm, costs

    def current_placements(
        self, tuples: list[TupleId], num_partitions: int | None = None
    ) -> tuple[list[frozenset[int]], list[float]]:
        """Deployed replica set + move cost per tuple, clamped to ``num_partitions``.

        The replica-aware counterpart of :meth:`current_node_assignment`.
        Clamping matters during a shrink: a tuple homed only on partitions
        being removed warm-starts at its post-shrink hash home (the physical
        copy is still planned from where the tuple actually lives).
        """
        k = self.num_partitions if num_partitions is None else num_partitions
        strategy = self.strategy
        use_bytes = self.options.move_cost == "bytes"
        database = self.cluster.partition_databases[0]
        placements: list[frozenset[int]] = []
        costs: list[float] = []
        for tuple_id in tuples:
            placement = frozenset(
                part for part in strategy.partitions_for_tuple(tuple_id) if part < k
            )
            if not placement:
                placement = hash_home(tuple_id, k)
            placements.append(placement)
            costs.append(float(database.tuple_byte_size(tuple_id)) if use_bytes else 1.0)
        return placements, costs

    def replication_candidates(self) -> list[int]:
        """Maintained-graph nodes the next adaptation will star-expand.

        Currently-replicated tuples qualify at a lower (retention) bar, so
        a replica set the budget just paid for is not collapsed by decay
        noise around the entry threshold — see
        ``OnlineOptions.replication_retention_slack``.
        """
        options = self.options
        if not options.replication_enabled or options.replication_max_candidates == 0:
            return []
        assignment = self.strategy.assignment
        retained = [
            node
            for node, tuple_id in enumerate(self.maintainer.tuples())
            if assignment.is_replicated(tuple_id)
        ]
        retention = max(
            0.0,
            options.replication_min_read_fraction - options.replication_retention_slack,
        )
        return self.maintainer.replication_candidates(
            min_read_fraction=options.replication_min_read_fraction,
            max_candidates=options.replication_max_candidates,
            min_weight=options.replication_min_weight,
            retained=retained,
            retention_read_fraction=retention,
        )

    def adapt(self, trigger: DriftReport | None = None) -> AdaptationRecord:
        """Re-partition with a migration budget and migrate the delta live.

        When the maintained graph holds read-hot (read-mostly) tuples, it is
        frozen with those tuples expanded into replication stars and the
        re-partitioner emits **replica sets**: a widened placement costs one
        migration copy per added replica, while writes to a replicated tuple
        keep involving all its replicas — so replication only wins where
        reads dominate.  Without candidates the legacy singleton path runs
        unchanged.

        Sequencing is copies -> routing update -> drops: while the routing
        state changes, every affected tuple is resident at both its old and
        new location, so reads routed under either placement succeed.  The
        plan and routing update touch only the maintained graph's tuples —
        O(drifted working set), not O(all deployed tuples) — unless the
        lookup backend cannot update in place (then a full rebuild + atomic
        swap is the only sound publication).
        """
        self._adapt_counter.inc()
        with get_telemetry().tracer.span("online.adapt", k=self.num_partitions) as span:
            record = self._adapt(trigger)
            span.set_attribute("tuples_changed", record.plan.tuples_changed)
            return record

    def _adapt(self, trigger: DriftReport | None) -> AdaptationRecord:
        before = self.monitor.window_stats().distributed_fraction
        repartitioner = BudgetedRepartitioner(self.options.repartition)
        candidates = self.replication_candidates()
        result: RepartitionResult | ReplicatedRepartitionResult
        if candidates:
            current, costs = self.current_placements(self.maintainer.tuples())
            csr, tuples, star = self.maintainer.freeze_replicated(
                candidates, [min(placement) for placement in current]
            )
            result = repartitioner.repartition_replicated(
                csr, star, current, self.num_partitions, costs
            )
            placements = result.placements
        else:
            csr, tuples = self.maintainer.freeze()
            warm, costs = self.current_node_assignment()
            result = repartitioner.repartition(csr, warm, self.num_partitions, costs)
            placements = [frozenset({part}) for part in result.assignment]
        target = PartitionAssignment(self.num_partitions)
        for node, tuple_id in enumerate(tuples):
            target.assign(tuple_id, placements[node])
        plan = plan_migration(self.strategy.partitions_for_tuple, target)
        table = self.router.lookup_table
        flip_mode = "delta" if table is not None and table.supports_update() else "swap"
        journal = MigrationJournal.for_plan(
            plan,
            kind="adapt",
            flip_mode=flip_mode,
            old_num_partitions=self.num_partitions,
            lookup_backend=self.options.lookup_backend,
            default_policy=self.strategy.default_policy,
        )
        migration = JournaledMigrator(
            self.cluster,
            self.router,
            journal,
            batch_size=self.migrator.batch_size,
        ).run()
        self.monitor.rebaseline(self.router.strategy)
        after = self.monitor.window_stats().distributed_fraction
        record = AdaptationRecord(trigger, result, plan, migration, before, after)
        self.adaptations.append(record)
        self._cooldown = self.options.cooldown_batches
        return record

    # -- elastic scaling --------------------------------------------------------------
    def resize(
        self, new_partitions: int, trigger_rate: float | None = None
    ) -> ResizeRecord:
        """Grow or shrink the cluster to ``new_partitions`` partitions, live.

        Convenience wrapper: opens a journaled session via
        :meth:`begin_resize` and drives it to completion in one call.  Use
        :meth:`begin_resize` directly to interleave the migration with live
        traffic (paced ticks), attach a journal sink for crash recovery, or
        inject faults.
        """
        session = self.begin_resize(new_partitions, trigger_rate=trigger_rate)
        record = session.run_to_completion()
        assert record is not None  # the session was never cancelled
        return record

    def begin_resize(
        self,
        new_partitions: int,
        *,
        trigger_rate: float | None = None,
        sink: MemoryJournalSink | FileJournalSink | None = None,
        pacer: MigrationPacer | None = None,
        injector: FaultInjector | None = None,
        batch_size: int | None = None,
    ) -> MigrationSession:
        """Plan a resize and return the journaled session that executes it.

        Re-seeds the k-way kernel at the new k (budgeted warm start from the
        clamped current placement, replication candidates included) and
        plans through the same copy-before-drop path as :meth:`adapt`, with
        two resize-specific obligations:

        * **every stored tuple the lookup table routed implicitly is pinned
          to an explicit entry**: the hash default policy's modulus changes
          with k, so an implicit placement computed at the old k would point
          at the wrong partition — the pin keeps every tuple reachable
          without moving it.  (The routing flip re-walks storage, so tuples
          inserted while the migration is in flight are pinned too.)
        * the routing state is republished by **atomic wholesale swap**
          (new strategy + new lookup table at the new k) regardless of
          backend: an in-place entry delta cannot express the modulus
          change, which invalidates every implicit placement at once.

        Growing adds the empty partitions *before* the copies (so data can
        land on them); shrinking removes the evacuated partitions only
        *after* the drops.  In between, reads routed under the old table
        find a resident replica, and the router's dual-write window carries
        writes to both placements of every in-flight tuple.

        ``sink`` makes every journal record durable (crash recovery picks
        up from the last persisted record via :meth:`attach_session`);
        ``pacer`` gates each tick's step budget by the live SLO (defaults
        to one built from ``options.pacing`` when that is set); ``injector``
        subjects migration steps and journal persists to the fault plan.
        """
        if new_partitions <= 0:
            raise ValueError("new_partitions must be positive")
        old_partitions = self.num_partitions
        if new_partitions == old_partitions:
            raise ValueError("resize to the current partition count is a no-op")
        self._resize_counter.inc(
            direction="grow" if new_partitions > old_partitions else "shrink"
        )
        with get_telemetry().tracer.span(
            "online.resize.plan", old_k=old_partitions, new_k=new_partitions
        ):
            return self._plan_resize(
                new_partitions,
                old_partitions,
                trigger_rate=trigger_rate,
                sink=sink,
                pacer=pacer,
                injector=injector,
                batch_size=batch_size,
            )

    def _plan_resize(
        self,
        new_partitions: int,
        old_partitions: int,
        *,
        trigger_rate: float | None,
        sink: MemoryJournalSink | FileJournalSink | None,
        pacer: MigrationPacer | None,
        injector: FaultInjector | None,
        batch_size: int | None,
    ) -> MigrationSession:
        repartitioner = BudgetedRepartitioner(self.options.repartition)
        candidates = self.replication_candidates()
        current, costs = self.current_placements(self.maintainer.tuples(), new_partitions)
        csr, tuples, star = self.maintainer.freeze_replicated(
            candidates, [min(placement) for placement in current]
        )
        result = repartitioner.repartition_replicated(
            csr, star, current, new_partitions, costs
        )
        target = PartitionAssignment(new_partitions)
        for node, tuple_id in enumerate(tuples):
            target.assign(tuple_id, result.placements[node])
        # Pin everything else where it lives (clamped); evacuees with no
        # surviving replica go to their new-k hash home.  One storage walk
        # supplies the physical locations for both the pinning loop and the
        # migration planning below.
        locations_of = self.cluster.tuple_locations_map()
        deployed = self.strategy.assignment
        tuples_pinned = 0
        for tuple_id in sorted(locations_of):
            if tuple_id in target:
                continue
            locations = locations_of[tuple_id]
            valid = frozenset(part for part in locations if part < new_partitions)
            if not valid:
                valid = hash_home(tuple_id, new_partitions)
            target.assign(tuple_id, valid)
            if tuple_id not in deployed:
                tuples_pinned += 1

        def physical_placement(tuple_id: TupleId) -> frozenset[int]:
            locations = locations_of.get(tuple_id)
            # A maintained tuple absent from the snapshot was deleted by live
            # traffic; fall back to its routed placement (the copy step will
            # no-op and report a skip).
            return locations or self.strategy.partitions_for_tuple(tuple_id)

        plan = plan_migration(physical_placement, target)
        journal = MigrationJournal.for_plan(
            plan,
            kind="resize",
            flip_mode="swap",
            old_num_partitions=old_partitions,
            new_num_partitions=new_partitions,
            lookup_backend=self.options.lookup_backend,
            default_policy=self.strategy.default_policy,
        )
        journal.tuples_pinned = tuples_pinned
        if pacer is None and self.options.pacing is not None:
            pacer = MigrationPacer(self.options.pacing)
        return MigrationSession(
            self,
            journal,
            trigger_rate=trigger_rate,
            repartition=result,
            sink=sink,
            pacer=pacer,
            injector=injector,
            batch_size=batch_size,
        )

    def attach_session(
        self,
        journal: MigrationJournal,
        *,
        trigger_rate: float | None = None,
        sink: MemoryJournalSink | FileJournalSink | None = None,
        pacer: MigrationPacer | None = None,
        injector: FaultInjector | None = None,
        batch_size: int | None = None,
    ) -> MigrationSession:
        """Resume (or take over) a journaled resize from its last record.

        The crash-recovery entry point: after a coordinator death, load the
        journal from its sink and hand it here — the new session re-opens
        the dual-write window appropriate to the journalled state and
        continues (or, after :meth:`MigrationSession.cancel`, rolls back).
        The planning-time repartition context died with the old coordinator,
        so a finished resumed session records ``repartition=None``.
        """
        if pacer is None and self.options.pacing is not None:
            pacer = MigrationPacer(self.options.pacing)
        return MigrationSession(
            self,
            journal,
            trigger_rate=trigger_rate,
            sink=sink,
            pacer=pacer,
            injector=injector,
            batch_size=batch_size,
        )

    def _finish_resize(self, session: MigrationSession) -> ResizeRecord | None:
        """Controller bookkeeping once a session's journal turns terminal."""
        journal = session.journal
        # Whether completed or rolled back, the routing strategy object may
        # have been republished: re-anchor the monitor and restart drift
        # tracking from the post-migration placement.
        self.monitor.rebaseline(self.router.strategy)
        self._elastic_cooldown = self.options.elastic.cooldown_batches
        self._cooldown = max(self._cooldown, self.options.cooldown_batches)
        if journal.state != "completed":
            return None
        record = ResizeRecord(
            journal.old_num_partitions,
            journal.new_num_partitions,
            session.trigger_rate,
            session.repartition,
            journal.plan,
            session.report,
            journal.tuples_pinned,
        )
        self.resizes.append(record)
        return record

    def export_plan(self, created_by: str = "online-export") -> "PartitionPlan":
        """The current live placement as a serializable :class:`PartitionPlan`.

        Closes the loop between offline and online: a deployment that has
        adapted (migrations, replica sets, resizes) can persist its state as
        the same artifact the offline pipeline produces — diffable against
        the originally deployed plan, re-deployable via ``start_online``.

        When the controller was deployed from a plan (``start_online`` sets
        :attr:`source_plan`) and **nothing has changed the placement** (no
        adaptations, no resizes), the plan's routing config — strategy
        name, default policies, hash columns, rule sets — is carried
        forward, so a deploy/export cycle round-trips the artifact
        identically.  Once the loop has adapted, the export instead
        describes the live deployment truthfully: a ``lookup-table`` plan
        with the router's actual default policy, because the offline rule
        sets no longer describe the adapted placements and rebuilding the
        offline winner from them would discard every migrated tuple.
        """
        from repro.pipeline.plan import PartitionPlan, PlanProvenance

        assignment = self.strategy.assignment
        stats = self.monitor.window_stats()
        provenance = PlanProvenance(
            created_by=created_by,
            metrics={
                "distributed_fraction": stats.distributed_fraction,
                "window_transactions": stats.transactions,
                "adaptations": len(self.adaptations),
                "resizes": len(self.resizes),
                "replicated_count": assignment.replicated_count,
            },
        )
        template = self.source_plan
        if (
            template is not None
            and template.num_partitions == self.num_partitions
            and not self.adaptations
            and not self.resizes
        ):
            return PartitionPlan(
                num_partitions=self.num_partitions,
                placements=dict(assignment.placements),
                strategy=template.strategy,
                lookup_default_policy=template.lookup_default_policy,
                range_fallback=template.range_fallback,
                rule_sets=dict(template.rule_sets),
                hash_columns=template.hash_columns,
                provenance=provenance,
            )
        return PartitionPlan(
            num_partitions=self.num_partitions,
            placements=dict(assignment.placements),
            strategy="lookup-table",
            lookup_default_policy=self.strategy.default_policy,
            provenance=provenance,
        )

    def preview_full_repartition(self) -> RepartitionResult:
        """What a from-scratch re-partition would do right now (not applied).

        Used by experiments and tests to compare the budgeted delta against
        the full-reshuffle baseline (labels aligned, so moves are genuine).
        """
        csr, _ = self.maintainer.freeze()
        warm, costs = self.current_node_assignment()
        return repartition_from_scratch(csr, warm, self.num_partitions, costs)

    def merged_assignment(
        self, tuples: list[TupleId], node_assignment: list[int]
    ) -> PartitionAssignment:
        """Full placement from a node assignment: deployed placements overridden.

        Public so that experiments can evaluate a previewed (not applied)
        re-partition exactly as :meth:`adapt` would deploy it.
        """
        return self.merged_placements(
            tuples, [frozenset({part}) for part in node_assignment]
        )

    def merged_placements(
        self, tuples: list[TupleId], placements: list[frozenset[int]]
    ) -> PartitionAssignment:
        """Full placement from per-tuple replica sets: deployed entries overridden.

        The replica-set counterpart of :meth:`merged_assignment`, used when
        the adaptation produced widened placements.
        """
        merged = PartitionAssignment(self.num_partitions)
        deployed = self.strategy.assignment
        for tuple_id in deployed:
            placement = deployed.partitions_of(tuple_id)
            assert placement is not None
            merged.assign(tuple_id, placement)
        for node, tuple_id in enumerate(tuples):
            merged.assign(tuple_id, placements[node])
        return merged
