"""Budgeted re-partitioning: small drifts should yield small deltas.

A from-scratch k-way cut of the maintained graph ignores where tuples
currently live, so even a mild drift would trigger a near-total reshuffle.
The :class:`BudgetedRepartitioner` instead **warm-starts from the current
assignment** and performs greedy k-way boundary refinement in which every
move is charged its **migration cost** (the size of the tuple that would
have to be copied across partitions):

* a move is taken only when its cut gain exceeds ``migration_cost_weight``
  times the migration-cost delta it causes;
* the total migration cost spent is capped by ``migration_budget``;
* cost accounting is relative to the *home* (pre-refinement) placement:
  leaving home costs the tuple's size, returning home refunds it, and moving
  between two foreign partitions is free (the copy already happened).

The refinement itself is the offline partitioner's k-way bucket-FM kernel
(:func:`repro.graph.refine.kway_fm_refine`) run in greedy mode with a
:class:`~repro.graph.refine.MoveCostModel` — the same per-part gain
structure, vectorised boundary initialisation and generation-counter
invalidation that power the direct k-way multilevel path, so live
re-partitioning rides every speedup the offline kernel gets.

:func:`repartition_from_scratch` wraps the offline multilevel partitioner
and — because fresh runs label partitions arbitrarily — re-aligns its labels
against the current assignment (:func:`align_partition_labels`) so the two
approaches are compared on genuine placement differences, not label noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.graph.model import CSRGraph
from repro.graph.partitioner import GraphPartitioner, PartitionerOptions
from repro.graph.refine import (
    MoveCostModel,
    cut_weight_two_way,
    kway_fm_refine,
    side_weights,
)

if TYPE_CHECKING:  # import cycle: maintainer imports nothing from here
    from repro.online.maintainer import StarExpansion


@dataclass
class RepartitionOptions:
    """Tuning knobs of the budgeted re-partitioner."""

    #: cut-gain units charged per unit of migration cost; higher values make
    #: the refiner more reluctant to move tuples.
    migration_cost_weight: float = 0.5
    #: cap on total migration cost spent (None = unbounded).  Feasibility
    #: (balance) repairs may exceed the budget: an overloaded partition is
    #: worse than a late migration.
    migration_budget: float | None = None
    #: maximum number of refinement passes over the boundary.
    max_passes: int = 8
    #: permissible relative imbalance, as in the offline partitioner.
    imbalance: float = 0.05

    def __post_init__(self) -> None:
        if self.migration_cost_weight < 0:
            raise ValueError("migration_cost_weight must be non-negative")
        if self.migration_budget is not None and self.migration_budget < 0:
            raise ValueError("migration_budget must be non-negative")


@dataclass
class RepartitionResult:
    """Outcome of one (budgeted or from-scratch) re-partition."""

    assignment: list[int]
    num_partitions: int
    cut_before: float
    cut_after: float
    #: nodes whose partition differs from the warm-start assignment.
    moved_nodes: list[int] = field(default_factory=list)
    #: total migration cost of those moves.
    migration_cost: float = 0.0

    @property
    def num_moved(self) -> int:
        """Number of nodes that changed partition."""
        return len(self.moved_nodes)


@dataclass
class ReplicatedRepartitionResult:
    """Outcome of a replication-aware budgeted re-partition.

    ``placements`` holds one replica *set* per base node: singletons for
    ordinary tuples, wider sets where the min-cut decided a read-hot tuple's
    satellites should scatter.  Migration cost is charged **per replica
    copy** (a partition newly added to a tuple's set costs one copy of the
    tuple); dropped replicas are free — deleting a stale copy moves no data.
    """

    placements: list[frozenset[int]]
    num_partitions: int
    #: cut weights on the star-expanded graph (comparable before/after,
    #: not directly comparable with the unexpanded graph's cut).
    cut_before: float
    cut_after: float
    #: base nodes whose replica set differs from the deployed placement.
    changed_nodes: list[int] = field(default_factory=list)
    #: total partitions added across all replica sets (copies to perform).
    replica_copies: int = 0
    #: total partitions removed across all replica sets (drops to perform).
    replica_drops: int = 0
    #: migration cost of the copies (per-copy tuple cost summed).
    migration_cost: float = 0.0

    @property
    def num_changed(self) -> int:
        """Number of tuples whose replica set changed."""
        return len(self.changed_nodes)

    #: alias so adaptation records can report either result type uniformly.
    num_moved = num_changed

    @property
    def replicated_count(self) -> int:
        """Number of tuples placed on more than one partition."""
        return sum(1 for placement in self.placements if len(placement) > 1)


class BudgetedRepartitioner:
    """Warm-started k-way refinement with migration-cost accounting.

    Two entry points: :meth:`repartition` refines a plain node -> partition
    assignment (singleton placements), :meth:`repartition_replicated`
    refines a star-expanded graph into per-tuple **replica sets** (read-hot
    tuples may widen onto several partitions; each added replica is charged
    one copy against the budget).  Both share the same balance-repair and
    bucket-FM phases, so they ride every speedup the offline kernel gets.
    """

    def __init__(self, options: RepartitionOptions | None = None) -> None:
        self.options = options or RepartitionOptions()

    def repartition(
        self,
        graph: CSRGraph,
        warm_assignment: list[int],
        num_parts: int,
        move_costs: list[float] | None = None,
    ) -> RepartitionResult:
        """Refine ``warm_assignment`` in a copy; the input list is not mutated.

        Parameters
        ----------
        graph:
            The frozen maintained graph.
        warm_assignment:
            Current partition of every node (the deployed placement).
        num_parts:
            Number of partitions.
        move_costs:
            Per-node migration cost (e.g. tuple bytes); defaults to 1.0 per
            node, i.e. "tuples moved".
        """
        options = self.options
        num_nodes = graph.num_nodes
        if len(warm_assignment) != num_nodes:
            raise ValueError("warm assignment length does not match the graph")
        assignment = list(warm_assignment)
        cut_before = cut_weight_two_way(graph, assignment)
        if num_nodes == 0 or num_parts <= 1:
            return RepartitionResult(assignment, num_parts, cut_before, cut_before)
        costs = move_costs if move_costs is not None else [1.0] * num_nodes
        home = warm_assignment
        max_weights = self._max_weights(graph, num_parts)
        weights = side_weights(graph, assignment, num_parts)
        spent = self._repair_balance(graph, assignment, home, costs, weights, max_weights)
        spent += self._refine(graph, assignment, home, costs, weights, max_weights, spent)
        moved = [node for node in range(num_nodes) if assignment[node] != home[node]]
        return RepartitionResult(
            assignment,
            num_parts,
            cut_before,
            cut_weight_two_way(graph, assignment),
            moved,
            sum(costs[node] for node in moved),
        )

    def repartition_replicated(
        self,
        graph: CSRGraph,
        star: "StarExpansion",
        current_placements: list[frozenset[int]],
        num_parts: int,
        move_costs: list[float] | None = None,
    ) -> ReplicatedRepartitionResult:
        """Budgeted re-partition of a star-expanded graph into replica sets.

        Parameters
        ----------
        graph:
            The frozen *expanded* graph
            (:meth:`~repro.online.maintainer.IncrementalGraphMaintainer.freeze_replicated`).
        star:
            The expansion bookkeeping: which expanded nodes are satellites of
            which base node.
        current_placements:
            The deployed replica set of every *base* node (non-empty, already
            restricted to ``[0, num_parts)``).  Satellites warm-start on the
            current replicas — a bucket satellite whose partition already
            holds a replica starts there (no charge for keeping it), the
            rest sit on the primary home — so the :class:`MoveCostModel`
            charges exactly the *new* copies a widened placement implies.  A
            satellite moving between two partitions is charged one copy (the
            drop it leaves behind is free), which slightly over-charges
            satellites consolidating onto an already-replicated partition;
            the returned ``migration_cost`` is recomputed exactly from the
            replica-set diffs.
        num_parts:
            Number of partitions.
        move_costs:
            Per-*base*-node copy cost (e.g. tuple bytes); defaults to 1.0.
        """
        num_base = star.num_base_nodes
        num_nodes = graph.num_nodes
        if len(current_placements) != num_base:
            raise ValueError("current placements length does not match the base graph")
        base_costs = move_costs if move_costs is not None else [1.0] * num_base
        # Expanded warm assignment + per-node copy costs.
        warm = [0] * num_nodes
        costs = [0.0] * num_nodes
        for node in range(num_base):
            placement = current_placements[node]
            primary = min(placement)
            warm[node] = primary
            satellites = star.satellites.get(node)
            if satellites is None:
                costs[node] = base_costs[node]
                continue
            # Candidate centre: virtual (its partition never reaches the
            # replica set), so its moves are free; the copies live on the
            # satellites.
            costs[node] = 0.0
            for satellite in satellites:
                bucket = star.satellite_bucket.get(satellite)
                warm[satellite] = bucket if bucket in placement else primary
                costs[satellite] = base_costs[node]
        assignment = list(warm)
        cut_before = cut_weight_two_way(graph, assignment)
        if num_nodes and num_parts > 1:
            max_weights = self._max_weights(graph, num_parts)
            weights = side_weights(graph, assignment, num_parts)
            spent = self._repair_balance(graph, assignment, warm, costs, weights, max_weights)
            self._refine(graph, assignment, warm, costs, weights, max_weights, spent)
        result = ReplicatedRepartitionResult(
            placements=[],
            num_partitions=num_parts,
            cut_before=cut_before,
            cut_after=cut_weight_two_way(graph, assignment),
        )
        for node in range(num_base):
            placement = frozenset(
                assignment[expanded] for expanded in star.placement_nodes(node)
            )
            result.placements.append(placement)
            old = current_placements[node]
            if placement == old:
                continue
            result.changed_nodes.append(node)
            copies = len(placement - old)
            result.replica_copies += copies
            result.replica_drops += len(old - placement)
            result.migration_cost += copies * base_costs[node]
        return result

    # -- phases -----------------------------------------------------------------------
    def _max_weights(self, graph: CSRGraph, num_parts: int) -> list[float]:
        total = graph.total_node_weight()
        max_node = max(graph.node_weights, default=0.0)
        per_part = total / num_parts
        return [per_part * (1.0 + self.options.imbalance) + max_node] * num_parts

    def _repair_balance(
        self,
        graph: CSRGraph,
        assignment: list[int],
        home: list[int],
        costs: list[float],
        weights: list[float],
        max_weights: list[float],
    ) -> float:
        """Move nodes out of overweight partitions, cheapest-to-migrate first.

        Returns the migration cost spent.  Budget is intentionally not
        enforced here: feasibility comes first (documented in the options).
        """
        indptr, indices, edge_weights, node_weights = graph.lists()
        num_parts = len(weights)
        spent = 0.0
        overweight = [part for part in range(num_parts) if weights[part] > max_weights[part]]
        for part in overweight:
            if weights[part] <= max_weights[part]:
                continue

            def eviction_key(node: int) -> tuple[float, int]:
                internal = sum(
                    edge_weights[i]
                    for i in range(indptr[node], indptr[node + 1])
                    if assignment[indices[i]] == part
                )
                return (internal + self.options.migration_cost_weight * costs[node], node)

            movable = sorted(
                (node for node in range(graph.num_nodes) if assignment[node] == part),
                key=eviction_key,
            )
            for node in movable:
                if weights[part] <= max_weights[part]:
                    break
                target = min(
                    (candidate for candidate in range(num_parts) if candidate != part),
                    key=lambda candidate: (
                        weights[candidate] / max(max_weights[candidate], 1e-9),
                        candidate,
                    ),
                )
                spent += self._cost_delta(node, part, target, home, costs)
                assignment[node] = target
                weights[part] -= node_weights[node]
                weights[target] += node_weights[node]
        return spent

    def _refine(
        self,
        graph: CSRGraph,
        assignment: list[int],
        home: list[int],
        costs: list[float],
        weights: list[float],
        max_weights: list[float],
        already_spent: float,
    ) -> float:
        """Cost-charged k-way refinement via the shared bucket-FM kernel.

        Delegates to :func:`repro.graph.refine.kway_fm_refine` in greedy
        mode: the :class:`MoveCostModel` adjusts every candidate gain by
        ``migration_cost_weight`` times its cost delta, enforces the budget
        (moves that would exceed it are inadmissible; returning home — a
        refund — always is), and keeps the running ledger.  Returns the
        migration cost this phase spent.
        """
        options = self.options
        cost_model = MoveCostModel(
            home,
            costs,
            options.migration_cost_weight,
            options.migration_budget,
            already_spent,
        )
        kway_fm_refine(
            graph,
            assignment,
            len(weights),
            max_weights,
            max_passes=options.max_passes,
            cost_model=cost_model,
            want_external=False,
        )
        return cost_model.spent - already_spent

    @staticmethod
    def _cost_delta(
        node: int, source: int, target: int, home: list[int], costs: list[float]
    ) -> float:
        """Migration-cost change of moving ``node`` from ``source`` to ``target``."""
        home_part = home[node]
        if source == home_part and target != home_part:
            return costs[node]
        if source != home_part and target == home_part:
            return -costs[node]
        return 0.0


def align_partition_labels(
    assignment: list[int],
    reference: list[int],
    num_parts: int,
    move_costs: list[float] | None = None,
) -> list[int]:
    """Relabel ``assignment``'s partitions to best match ``reference``.

    A fresh partitioner run labels its parts arbitrarily; before counting
    "tuples moved" against the deployed placement the labels must be matched,
    otherwise a pure relabelling would look like a full migration.  Greedy
    maximum-overlap matching (overlap measured in migration cost) is within a
    factor of two of optimal and fully deterministic.
    """
    overlap: dict[tuple[int, int], float] = {}
    for node, new_part in enumerate(assignment):
        cost = move_costs[node] if move_costs is not None else 1.0
        pair = (new_part, reference[node])
        overlap[pair] = overlap.get(pair, 0.0) + cost
    ranked = sorted(overlap.items(), key=lambda item: (-item[1], item[0]))
    mapping: dict[int, int] = {}
    used_targets: set[int] = set()
    for (new_part, old_part), _ in ranked:
        if new_part in mapping or old_part in used_targets:
            continue
        mapping[new_part] = old_part
        used_targets.add(old_part)
    free_targets = [part for part in range(num_parts) if part not in used_targets]
    for part in range(num_parts):
        if part not in mapping:
            mapping[part] = free_targets.pop(0)
    return [mapping[part] for part in assignment]


def repartition_from_scratch(
    graph: CSRGraph,
    current_assignment: list[int],
    num_parts: int,
    move_costs: list[float] | None = None,
    partitioner_options: PartitionerOptions | None = None,
) -> RepartitionResult:
    """Full multilevel re-partition, label-aligned against the current placement.

    The baseline the budgeted re-partitioner is judged against: it reaches
    the best cut the offline partitioner can produce, at whatever migration
    cost that implies.
    """
    partitioner = GraphPartitioner(partitioner_options)
    fresh = partitioner.partition(graph, num_parts)
    aligned = align_partition_labels(fresh, current_assignment, num_parts, move_costs)
    costs = move_costs if move_costs is not None else [1.0] * graph.num_nodes
    moved = [
        node for node in range(graph.num_nodes) if aligned[node] != current_assignment[node]
    ]
    return RepartitionResult(
        aligned,
        num_parts,
        cut_weight_two_way(graph, current_assignment),
        cut_weight_two_way(graph, aligned),
        moved,
        sum(costs[node] for node in moved),
    )
