"""Live migration: turning an assignment delta into ordered data movement.

Given the deployed placement and the re-partitioner's new one, the planner
emits per-tuple steps in a **copy-before-drop** order: every tuple is first
copied to each newly-assigned partition (reading from one of its current
replicas), and only once all copies exist are the stale replicas dropped.
At no point is a tuple stored on zero of its old-or-new partitions, so reads
routed under either the old or the new lookup table always find a replica —
the downtime-free property the executor reports progress on.

The executor applies the plan to any :class:`MigrationBackend` — the
simulated :class:`~repro.distributed.cluster.Cluster` or the real SQLite
worker cluster via :class:`~repro.storage.migrator.SqliteMigrationBackend` —
with message accounting consistent with the 2PC coordinator (one
request/response pair per remote read, write, or delete).  The controller
sequences it as copies -> routing update -> drops, so the routing state is
only ever consulted while every affected tuple exists at both its old and
its new location.  Two routing-update paths exist:

* :meth:`LiveMigrator.apply_routing_delta` — for exact lookup backends
  (``supports_update()``), only the changed entries are re-written in
  place: O(moved tuples), each entry flip atomic;
* :meth:`LiveMigrator.swap_routing` — for backends that cannot narrow
  entries (Bloom filters), the replacement table is fully built off to the
  side and published with a single reference assignment.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Protocol, runtime_checkable

from repro.catalog.tuples import TupleId
from repro.core.strategies import LookupTablePartitioning, hash_home
from repro.distributed.faults import FaultInjector, MessageDropped
from repro.graph.assignment import PartitionAssignment
from repro.obs import get_telemetry
from repro.routing.lookup import build_lookup_table
from repro.routing.router import Router
from repro.utils.canonical_json import dumps_canonical


@runtime_checkable
class MigrationBackend(Protocol):
    """What a migration executor needs from the thing holding the data.

    The simulated :class:`~repro.distributed.cluster.Cluster` satisfies this
    natively; :class:`~repro.storage.migrator.SqliteMigrationBackend` adapts
    the real worker-process cluster to the same contract, so the journaled
    state machine is backend-agnostic.  The semantics the executor relies on:

    * :meth:`copy_tuple` returns ``None`` when the tuple no longer exists at
      ``source`` (vanished under live traffic — skip), ``0`` when the target
      already held the replica (idempotent replay — skip), and the copied
      byte count otherwise;
    * :meth:`drop_tuple` returns ``False`` when the replica was already gone;
    * both must be atomic with respect to concurrent client writes;
    * :meth:`grow_to` / :meth:`shrink_to` are idempotent on re-attach.
    """

    @property
    def num_partitions(self) -> int: ...

    def grow_to(self, num_partitions: int) -> None: ...

    def shrink_to(self, num_partitions: int) -> None: ...

    def copy_tuple(self, tuple_id: TupleId, source: int, target: int) -> int | None: ...

    def drop_tuple(self, tuple_id: TupleId, partition: int) -> bool: ...

    def tuple_locations_map(self) -> dict[TupleId, frozenset[int]]: ...


@dataclass(frozen=True)
class MigrationStep:
    """One unit of data movement.

    ``action`` is ``"copy"`` (read the tuple from ``source``, write it to
    ``target``) or ``"drop"`` (delete the replica on ``source``; ``target``
    is -1).
    """

    action: str
    tuple_id: TupleId
    source: int
    target: int = -1


@dataclass
class MigrationPlan:
    """Ordered migration steps plus summary statistics."""

    num_partitions: int
    #: all copy steps, ordered before every drop step.
    copies: list[MigrationStep] = field(default_factory=list)
    drops: list[MigrationStep] = field(default_factory=list)
    #: the routing delta: new placement per changed tuple, for apply_delta.
    changes: list[tuple[TupleId, frozenset[int]]] = field(default_factory=list)
    #: the *old* placement per changed tuple (parallel to ``changes``) — what
    #: a cancelled migration rolls the routing state back to.
    previous: list[tuple[TupleId, frozenset[int]]] = field(default_factory=list)
    #: tuples whose placement changed at all.
    tuples_changed: int = 0
    #: tuples that gained at least one replica (replication widened).
    tuples_replicated: int = 0
    #: tuples that moved (new placement disjoint additions + drops).
    tuples_moved: int = 0
    #: per-replica accounting: partitions added / removed across all tuples
    #: (each added replica is one copy to execute, each removed one a drop).
    replicas_added: int = 0
    replicas_dropped: int = 0

    @property
    def steps(self) -> list[MigrationStep]:
        """All steps in execution order (copies first, then drops)."""
        return self.copies + self.drops

    @property
    def is_empty(self) -> bool:
        """Whether the plan does nothing."""
        return not self.copies and not self.drops


def plan_migration(
    old_placement: Callable[[TupleId], frozenset[int]],
    new_assignment: PartitionAssignment,
) -> MigrationPlan:
    """Diff the deployed placement against ``new_assignment``.

    Parameters
    ----------
    old_placement:
        Resolver for the *current* physical location of a tuple.  Passing
        the deployed strategy's ``partitions_for_tuple`` (rather than a bare
        assignment lookup) means tuples that were routed by the default
        policy — e.g. hash-placed tuples the training trace never saw — are
        migrated from where they actually live.
    new_assignment:
        The target placement for every tuple the re-partitioner assigned.
        Tuples absent from it keep their current placement (no steps).
    """
    plan = MigrationPlan(new_assignment.num_partitions)
    for tuple_id in sorted(new_assignment):
        new_parts = new_assignment.partitions_of(tuple_id)
        assert new_parts is not None
        old_parts = old_placement(tuple_id)
        if not old_parts:
            raise ValueError(f"tuple {tuple_id} has no current placement to migrate from")
        if new_parts == old_parts:
            continue
        plan.tuples_changed += 1
        plan.changes.append((tuple_id, new_parts))
        plan.previous.append((tuple_id, old_parts))
        added = new_parts - old_parts
        removed = old_parts - new_parts
        plan.replicas_added += len(added)
        plan.replicas_dropped += len(removed)
        if added and not removed:
            plan.tuples_replicated += 1
        if removed:
            plan.tuples_moved += 1
        # Copy from a deterministic existing replica.
        source = min(old_parts)
        for target in sorted(added):
            plan.copies.append(MigrationStep("copy", tuple_id, source, target))
        for stale in sorted(removed):
            plan.drops.append(MigrationStep("drop", tuple_id, stale))
    return plan


@dataclass
class MigrationReport:
    """Execution record of one migration."""

    copies: int = 0
    drops: int = 0
    skipped: int = 0
    messages: int = 0
    bytes_copied: int = 0
    #: steps deferred because an injected fault (node down, message lost)
    #: made them fail transiently; each was retried on a later batch.
    faults_deferred: int = 0
    #: cumulative (copies done, drops done) after each executed batch — the
    #: "downtime-free progress" trail: copies always complete before drops
    #: begin, so every prefix leaves all tuples reachable.
    progress: list[tuple[int, int]] = field(default_factory=list)
    lookup_swapped: bool = False

    def describe(self) -> str:
        """One-line summary for logs and experiment reports."""
        return (
            f"migration: {self.copies} copies, {self.drops} drops "
            f"({self.skipped} skipped), {self.messages} messages, "
            f"{self.bytes_copied} bytes"
        )


class LiveMigrator:
    """Executes migration plans against a cluster and swaps routing state."""

    def __init__(self, cluster: MigrationBackend, batch_size: int = 64) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.cluster = cluster
        self.batch_size = batch_size
        self._steps_counter = get_telemetry().metrics.counter(
            "migration.steps",
            "migration unit steps by action and result",
            labels=("action", "result"),
        )

    def execute(self, plan: MigrationPlan) -> MigrationReport:
        """Apply ``plan`` to the cluster (copies first, then drops)."""
        report = self.execute_copies(plan)
        return self.execute_drops(plan, report)

    def execute_copies(
        self,
        plan: MigrationPlan,
        report: MigrationReport | None = None,
        allow_fewer_partitions: bool = False,
    ) -> MigrationReport:
        """Apply only the copy steps — every tuple becomes dually resident."""
        return self._execute_steps(plan, plan.copies, report, allow_fewer_partitions)

    def execute_drops(
        self,
        plan: MigrationPlan,
        report: MigrationReport,
        allow_fewer_partitions: bool = False,
    ) -> MigrationReport:
        """Apply only the drop steps (call after the routing update)."""
        return self._execute_steps(plan, plan.drops, report, allow_fewer_partitions)

    def _execute_steps(
        self,
        plan: MigrationPlan,
        steps: list[MigrationStep],
        report: MigrationReport | None = None,
        allow_fewer_partitions: bool = False,
    ) -> MigrationReport:
        # Only the elastic shrink path may execute a plan targeting fewer
        # partitions than the cluster still has (it removes the evacuated
        # partitions after the drops, and says so via the flag).  Everywhere
        # else a count mismatch means a stale or misdirected plan.
        if plan.num_partitions != self.cluster.num_partitions and not (
            allow_fewer_partitions and plan.num_partitions < self.cluster.num_partitions
        ):
            raise ValueError("plan and cluster disagree on the number of partitions")
        if report is None:
            report = MigrationReport()
        pending = 0
        for step in steps:
            if step.action == "copy":
                self._copy(step, report)
            else:
                self._drop(step, report)
            pending += 1
            if pending >= self.batch_size:
                report.progress.append((report.copies, report.drops))
                pending = 0
        if pending:
            report.progress.append((report.copies, report.drops))
        return report

    def _copy(self, step: MigrationStep, report: MigrationReport) -> None:
        # Read from source: one request/response pair.
        report.messages += 2
        copied_bytes = self.cluster.copy_tuple(step.tuple_id, step.source, step.target)
        if copied_bytes is None:
            # The tuple vanished (e.g. deleted by live traffic between
            # planning and execution): nothing to copy, routing will miss it
            # everywhere, which is consistent.
            report.skipped += 1
            self._steps_counter.inc(action="copy", result="skipped")
            return
        if copied_bytes == 0:
            # The target already held the replica (e.g. a plan replayed
            # after a crash between copies and drops): nothing was written,
            # so no write messages and no copy is recorded — mirroring how
            # dropping an absent replica reports a skip.
            report.skipped += 1
            self._steps_counter.inc(action="copy", result="skipped")
            return
        # Write to target: one request/response pair.
        report.messages += 2
        report.bytes_copied += copied_bytes
        report.copies += 1
        self._steps_counter.inc(action="copy", result="applied")

    def _drop(self, step: MigrationStep, report: MigrationReport) -> None:
        report.messages += 2
        if self.cluster.drop_tuple(step.tuple_id, step.source):
            report.drops += 1
            self._steps_counter.inc(action="drop", result="applied")
        else:
            report.skipped += 1
            self._steps_counter.inc(action="drop", result="skipped")

    def apply_routing_delta(
        self, router: Router, plan: MigrationPlan, report: MigrationReport
    ) -> None:
        """Publish the new placement by re-writing only the changed entries.

        The O(moved tuples) routing-update path for exact lookup backends
        (``supports_update()``): each ``put`` flips one tuple's entry from
        its old to its new placement — individually atomic, and safe at any
        interleaving because the copies already ran (both placements are
        physically valid until the drops execute).
        """
        table = router.lookup_table
        if table is not None:
            table.apply_delta(plan.changes)
        strategy = router.strategy
        if isinstance(strategy, LookupTablePartitioning):
            for tuple_id, partitions in plan.changes:
                strategy.assignment.assign(tuple_id, partitions)
        report.lookup_swapped = True

    def swap_routing(
        self,
        router: Router,
        new_assignment: PartitionAssignment,
        report: MigrationReport,
        lookup_backend: str = "dict",
    ) -> None:
        """Atomically publish the new placement as a wholesale table swap.

        The fallback for backends that cannot narrow entries in place
        (Bloom filters): the replacement lookup table is built completely
        before a single reference assignment swaps it in; the strategy's
        assignment is updated the same way.  In CPython both rebinds are
        atomic, so a concurrent ``route_statement`` sees a consistent table.
        """
        new_table = build_lookup_table(new_assignment, backend=lookup_backend)
        strategy = router.strategy
        if isinstance(strategy, LookupTablePartitioning):
            strategy.assignment = new_assignment
        router.lookup_table = new_table
        report.lookup_swapped = True


# ---------------------------------------------------------------------------
# Journaled (crash-safe) migration
# ---------------------------------------------------------------------------

#: on-disk format marker and version of the journal; bump on breaking changes.
JOURNAL_FORMAT = "repro-migration-journal"
JOURNAL_FORMAT_VERSION = 1

#: forward states, in order.  ``cancelling``/``cancelled`` form the rollback
#: branch reachable from any non-terminal forward state.
JOURNAL_FORWARD_STATES = (
    "planned",
    "copying",
    "dual-window",
    "flipped",
    "dropping",
    "completed",
)
JOURNAL_CANCEL_STATES = ("cancelling", "cancelled")
JOURNAL_TERMINAL_STATES = ("completed", "cancelled")


class JournalFormatError(ValueError):
    """A journal payload is not something this version can read."""


def _placement_rows(entries: list[tuple[TupleId, frozenset[int]]]) -> list[list]:
    return [
        [tuple_id.table, list(tuple_id.key), sorted(partitions)]
        for tuple_id, partitions in entries
    ]


def _placement_entries(rows: list) -> list[tuple[TupleId, frozenset[int]]]:
    return [
        (TupleId(table, tuple(key)), frozenset(int(part) for part in partitions))
        for table, key, partitions in rows
    ]


@dataclass
class MigrationJournal:
    """The durable state machine of one in-flight migration.

    Serialised alongside the :class:`~repro.pipeline.plan.PartitionPlan`
    artifact, the journal captures everything needed to *resume* a
    half-applied migration (or *cancel* it back to the pre-migration
    placement) after a coordinator crash: the full step list, the routing
    delta and its inverse, and cursors over every phase.  Serialisation is
    canonical JSON, so the byte sequence of journal snapshots is a pure
    function of (plan, progress) — the resume path is byte-deterministic.

    Forward lifecycle::

        planned -> copying -> dual-window -> flipped -> dropping -> completed

    The dual-write window opens at ``planned -> copying`` and closes at the
    routing flip (``dual-window -> flipped``).  :meth:`JournaledMigrator.cancel`
    branches any non-terminal state to ``cancelling``, whose rollback runs
    restore-copies (undoing executed drops), a routing flip-back (when the
    flip had happened), and removal of the added replicas, ending in
    ``cancelled``.
    """

    plan: MigrationPlan
    #: "adapt" (placement delta at fixed k) or "resize" (k changes).
    kind: str = "adapt"
    #: "delta" (in-place lookup entry updates) or "swap" (wholesale rebuild).
    flip_mode: str = "delta"
    old_num_partitions: int = 0
    new_num_partitions: int = 0
    lookup_backend: str = "dict"
    default_policy: str = "hash"
    #: stable identifier of this migration, journalled so resumed executors
    #: regenerate the *same* per-step transaction ids.  Real-storage backends
    #: namespace their exactly-once dedup markers with it: dedup rows persist
    #: in the SQLite files across successive migrations, so a later migration
    #: touching the same tuple must not collide with an earlier one's markers.
    migration_id: str = "mig"
    #: which executor family owns this journal: "simulated" (in-memory
    #: cluster) or "storage" (SQLite worker processes).  Status rendering and
    #: resume tooling use it to pick the right session counters.
    backend: str = "simulated"
    state: str = "planned"
    copies_done: int = 0
    drops_done: int = 0
    flip_done: bool = False
    #: rollback cursors (meaningful from ``cancelling`` on).
    rollback_restored: int = 0
    rollback_flip_done: bool = False
    rollback_removed: int = 0
    #: implicitly-routed tuples pinned explicit at the flip (resize only).
    tuples_pinned: int = 0
    #: journal records persisted so far (the crash-point index fault plans
    #: target); incremented by every :meth:`JournaledMigrator` persist.
    records: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("adapt", "resize"):
            raise ValueError("kind must be 'adapt' or 'resize'")
        if self.flip_mode not in ("delta", "swap"):
            raise ValueError("flip_mode must be 'delta' or 'swap'")
        if self.backend not in ("simulated", "storage"):
            raise ValueError("backend must be 'simulated' or 'storage'")
        if self.state not in JOURNAL_FORWARD_STATES + JOURNAL_CANCEL_STATES:
            raise ValueError(f"unknown journal state {self.state!r}")

    @classmethod
    def for_plan(
        cls,
        plan: MigrationPlan,
        *,
        kind: str,
        flip_mode: str,
        old_num_partitions: int,
        new_num_partitions: int | None = None,
        lookup_backend: str = "dict",
        default_policy: str = "hash",
        migration_id: str = "mig",
        backend: str = "simulated",
    ) -> "MigrationJournal":
        """Open a fresh journal for ``plan``."""
        return cls(
            plan=plan,
            kind=kind,
            flip_mode=flip_mode,
            old_num_partitions=old_num_partitions,
            new_num_partitions=(
                plan.num_partitions if new_num_partitions is None else new_num_partitions
            ),
            lookup_backend=lookup_backend,
            default_policy=default_policy,
            migration_id=migration_id,
            backend=backend,
        )

    @property
    def is_terminal(self) -> bool:
        """Whether the migration has fully completed or fully rolled back."""
        return self.state in JOURNAL_TERMINAL_STATES

    @property
    def is_cancelling(self) -> bool:
        """Whether the journal is on the rollback branch (not yet cancelled)."""
        return self.state == "cancelling"

    def progress_summary(self) -> str:
        """One-line progress description for logs."""
        total_copies = len(self.plan.copies)
        total_drops = len(self.plan.drops)
        return (
            f"journal[{self.kind}/{self.flip_mode}] {self.state}: "
            f"copies {self.copies_done}/{total_copies}, "
            f"drops {self.drops_done}/{total_drops}, "
            f"flip {'done' if self.flip_done else 'pending'}, "
            f"{self.records} records"
        )

    # -- serialisation ----------------------------------------------------------------
    def to_payload(self) -> dict:
        """Canonical JSON-serialisable payload."""
        return {
            "format": JOURNAL_FORMAT,
            "version": JOURNAL_FORMAT_VERSION,
            "kind": self.kind,
            "flip_mode": self.flip_mode,
            "old_num_partitions": self.old_num_partitions,
            "new_num_partitions": self.new_num_partitions,
            "lookup_backend": self.lookup_backend,
            "default_policy": self.default_policy,
            "migration_id": self.migration_id,
            "backend": self.backend,
            "copies": [
                [step.tuple_id.table, list(step.tuple_id.key), step.source, step.target]
                for step in self.plan.copies
            ],
            "drops": [
                [step.tuple_id.table, list(step.tuple_id.key), step.source]
                for step in self.plan.drops
            ],
            "changes": _placement_rows(self.plan.changes),
            "previous": _placement_rows(self.plan.previous),
            "cursor": {
                "state": self.state,
                "copies_done": self.copies_done,
                "drops_done": self.drops_done,
                "flip_done": self.flip_done,
                "rollback_restored": self.rollback_restored,
                "rollback_flip_done": self.rollback_flip_done,
                "rollback_removed": self.rollback_removed,
                "tuples_pinned": self.tuples_pinned,
                "records": self.records,
            },
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "MigrationJournal":
        """Rebuild a journal from a parsed payload (inverse of :meth:`to_payload`)."""
        if payload.get("format") != JOURNAL_FORMAT:
            raise JournalFormatError(
                f"not a migration journal (format={payload.get('format')!r})"
            )
        version = payload.get("version")
        if not isinstance(version, int) or version > JOURNAL_FORMAT_VERSION:
            raise JournalFormatError(
                f"journal version {version!r} is newer than supported "
                f"({JOURNAL_FORMAT_VERSION}); upgrade repro to read it"
            )
        plan = MigrationPlan(int(payload["new_num_partitions"]))
        plan.copies = [
            MigrationStep("copy", TupleId(table, tuple(key)), int(source), int(target))
            for table, key, source, target in payload["copies"]
        ]
        plan.drops = [
            MigrationStep("drop", TupleId(table, tuple(key)), int(source))
            for table, key, source in payload["drops"]
        ]
        plan.changes = _placement_entries(payload["changes"])
        plan.previous = _placement_entries(payload["previous"])
        # Recompute the summary statistics from the step lists.
        plan.tuples_changed = len(plan.changes)
        plan.replicas_added = len(plan.copies)
        plan.replicas_dropped = len(plan.drops)
        old_of = dict(plan.previous)
        for tuple_id, new_parts in plan.changes:
            old_parts = old_of[tuple_id]
            if new_parts - old_parts and not (old_parts - new_parts):
                plan.tuples_replicated += 1
            if old_parts - new_parts:
                plan.tuples_moved += 1
        cursor = payload.get("cursor", {})
        return cls(
            plan=plan,
            kind=payload["kind"],
            flip_mode=payload["flip_mode"],
            old_num_partitions=int(payload["old_num_partitions"]),
            new_num_partitions=int(payload["new_num_partitions"]),
            lookup_backend=payload.get("lookup_backend", "dict"),
            default_policy=payload.get("default_policy", "hash"),
            migration_id=payload.get("migration_id", "mig"),
            backend=payload.get("backend", "simulated"),
            state=cursor.get("state", "planned"),
            copies_done=int(cursor.get("copies_done", 0)),
            drops_done=int(cursor.get("drops_done", 0)),
            flip_done=bool(cursor.get("flip_done", False)),
            rollback_restored=int(cursor.get("rollback_restored", 0)),
            rollback_flip_done=bool(cursor.get("rollback_flip_done", False)),
            rollback_removed=int(cursor.get("rollback_removed", 0)),
            tuples_pinned=int(cursor.get("tuples_pinned", 0)),
            records=int(cursor.get("records", 0)),
        )

    def dumps(self) -> str:
        """Canonical JSON text (sorted keys, trailing newline) of the journal."""
        return dumps_canonical(self.to_payload()) + "\n"

    @classmethod
    def loads(cls, text: str) -> "MigrationJournal":
        """Parse a journal from JSON text."""
        return cls.from_payload(json.loads(text))


def default_journal_path(plan_path: str | Path) -> Path:
    """Where the journal of a migration of ``plan_path`` lives by convention."""
    plan_path = Path(plan_path)
    return plan_path.with_name(plan_path.name + ".journal")


class MemoryJournalSink:
    """Keeps the latest journal snapshot in memory (tests, experiments)."""

    def __init__(self) -> None:
        self.text: str | None = None
        self.writes = 0

    def write(self, text: str) -> None:
        """Replace the durable snapshot with ``text``."""
        self.text = text
        self.writes += 1

    def load(self) -> MigrationJournal:
        """The journal parsed back from the last snapshot."""
        if self.text is None:
            raise ValueError("no journal snapshot has been written yet")
        return MigrationJournal.loads(self.text)


class FileJournalSink:
    """Persists each journal snapshot to a file (alongside the plan artifact).

    Crash-durable, not just atomic: the tmp file is fsync'd before the
    rename and the containing directory is fsync'd after it.  Without the
    first fsync a rename can land while the *contents* are still only in
    the page cache (a power cut leaves a truncated or empty journal at the
    final path); without the second the rename itself may not survive.  The
    previous snapshot stays intact at every instant in between.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.writes = 0

    def write(self, text: str) -> None:
        """Durably replace the journal file with ``text`` (write-fsync-rename-fsync)."""
        temp = self.path.with_name(self.path.name + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        temp.replace(self.path)
        directory_fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        except OSError:  # pragma: no cover - directory fsync unsupported here
            pass
        finally:
            os.close(directory_fd)
        self.writes += 1

    def load(self) -> MigrationJournal:
        """The journal parsed back from the file."""
        return MigrationJournal.loads(self.path.read_text(encoding="utf-8"))


class JournaledMigrator:
    """Crash-safe executor of a :class:`MigrationJournal`.

    Wraps :class:`LiveMigrator`'s per-step operations in a journal-first
    protocol: progress is applied in bounded batches, the journal snapshot
    is persisted to ``sink`` after every batch, and every operation is
    idempotent — so a migrator resumed from the last persisted snapshot
    replays at most one batch (copies find their replica already present,
    drops find it already gone) and continues to the same final state.

    The router's dual-write window is opened before the first copy and
    closed at the routing flip, so live writes interleaved with batches
    reach both the old and the new replicas of every in-flight tuple.  With
    a :class:`~repro.distributed.faults.FaultInjector` attached, steps whose
    participants are crashed (or whose messages drop) are *deferred* — the
    batch ends early and the step retries on a later tick — and persisting a
    record can raise
    :class:`~repro.distributed.faults.CoordinatorDeath`, after which a new
    migrator attached to the same journal carries on.
    """

    def __init__(
        self,
        cluster: MigrationBackend,
        router: Router,
        journal: MigrationJournal,
        sink: MemoryJournalSink | FileJournalSink | None = None,
        batch_size: int = 64,
        injector: FaultInjector | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.cluster = cluster
        self.router = router
        self.journal = journal
        self.sink = sink
        self.injector = injector
        self.batch_size = batch_size
        self.migrator = LiveMigrator(cluster, batch_size)
        self.report = MigrationReport()
        #: placement each changed tuple migrates to (for restore sources).
        self._new_placement = dict(journal.plan.changes)
        telemetry = get_telemetry()
        self._tracer = telemetry.tracer
        self._transitions = telemetry.metrics.counter(
            "migration.state_transitions",
            "journal state machine transitions",
            labels=("from_state", "to_state"),
        )
        self._records_counter = telemetry.metrics.counter(
            "migration.journal_records", "journal records persisted"
        )
        self._attach()

    def _transition(self, new_state: str) -> None:
        """Move the journal to ``new_state``, recording the transition."""
        old_state = self.journal.state
        self.journal.state = new_state
        self._transitions.inc(from_state=old_state, to_state=new_state)
        self._tracer.event(
            "migration.transition", from_state=old_state, to_state=new_state
        )

    # -- attachment (fresh or resumed) -------------------------------------------------
    def _attach(self) -> None:
        journal = self.journal
        if journal.new_num_partitions > self.cluster.num_partitions and not journal.is_terminal:
            # A growing resize adds the empty partitions before any copy so
            # data can land on them; re-attaching after a crash finds them
            # already present (grow_to is guarded below).
            self.cluster.grow_to(journal.new_num_partitions)
        if journal.plan.num_partitions > self.cluster.num_partitions:
            raise ValueError("plan and cluster disagree on the number of partitions")
        window = self.router.migration_window
        window.close()
        if journal.state in ("copying", "dual-window"):
            window.open(self._forward_window_entries())
        elif journal.is_cancelling and journal.flip_done and not journal.rollback_flip_done:
            window.open(self._rollback_window_entries())

    def _forward_window_entries(self):
        for (tuple_id, new_parts), (_, old_parts) in zip(
            self.journal.plan.changes, self.journal.plan.previous
        ):
            yield tuple_id, new_parts - old_parts

    def _rollback_window_entries(self):
        for (tuple_id, new_parts), (_, old_parts) in zip(
            self.journal.plan.changes, self.journal.plan.previous
        ):
            yield tuple_id, old_parts - new_parts

    # -- public surface ----------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the journal reached a terminal state."""
        return self.journal.is_terminal

    def cancel(self) -> None:
        """Switch to the rollback branch (idempotent on ``cancelling``).

        Subsequent :meth:`step` calls undo the migration: executed drops are
        restored by copying back from a live replica, the routing flip (if
        it happened) is reverted to the journalled previous placements, and
        the added replicas are removed.
        """
        journal = self.journal
        if journal.is_terminal:
            raise ValueError(f"cannot cancel a {journal.state} migration")
        if journal.is_cancelling:
            return
        window = self.router.migration_window
        window.close()
        if journal.flip_done:
            # Routing currently points at the *new* placement while rollback
            # re-creates the old replicas: writes must reach both, or an
            # update landing after a restore-copy would be lost at the
            # restored location once the flip-back happens.
            window.open(self._rollback_window_entries())
        self._transition("cancelling")
        self._persist()

    def step(self, max_steps: int | None = None) -> int:
        """Advance the state machine by up to ``max_steps`` unit steps.

        One call works on exactly one phase (a batch of copies/drops, or a
        single transition like the routing flip), persists the journal when
        progress was made, and returns the number of executed steps (0 when
        terminal, paused by faults, or stalled on unavailable nodes).
        """
        budget = self.batch_size if max_steps is None else max_steps
        if budget <= 0 or self.journal.is_terminal:
            return 0
        if self.injector is not None:
            # Each migration tick advances the fault clock too, so node-crash
            # windows expire even when no transactions are flowing (e.g. the
            # drain phase after live traffic ends).
            self.injector.advance()
        # The span closes with status="error" when an injected coordinator
        # death unwinds out of a mid-batch persist.
        with self._tracer.span(
            "migration.step", state=self.journal.state, budget=budget
        ) as span:
            if self.journal.is_cancelling:
                executed = self._step_rollback(budget)
            else:
                executed = self._step_forward(budget)
            span.set_attribute("executed", executed)
            return executed

    def run(self, max_ticks: int = 1_000_000) -> MigrationReport:
        """Drive :meth:`step` to a terminal state (no pacing, no faults gate).

        Raises ``RuntimeError`` when the state machine stops making progress
        for many consecutive ticks (e.g. a permanently crashed node).
        """
        stalled = 0
        for _ in range(max_ticks):
            if self.journal.is_terminal:
                return self.report
            executed = self.step()
            if executed == 0 and not self.journal.is_terminal:
                stalled += 1
                if stalled > 10_000:
                    raise RuntimeError(
                        f"migration stalled at {self.journal.progress_summary()}"
                    )
            else:
                stalled = 0
        raise RuntimeError("migration did not terminate within max_ticks")

    # -- forward path ------------------------------------------------------------------
    def _step_forward(self, budget: int) -> int:
        journal = self.journal
        if journal.state == "planned":
            self.router.migration_window.open(self._forward_window_entries())
            self._transition("copying")
            self._persist()
            return 1
        if journal.state == "copying":
            executed = self._run_batch(journal.plan.copies, "copies_done", budget)
            if journal.copies_done == len(journal.plan.copies):
                self._transition("dual-window")
                self._persist()
                return max(executed, 1)
            if executed:
                self._persist()
            return executed
        if journal.state == "dual-window":
            # Every tuple is resident at both placements: flip the routing
            # and close the dual-write window in the same step.
            self._flip_forward()
            journal.flip_done = True
            self._transition("flipped")
            self._persist()
            return 1
        if journal.state == "flipped":
            self._transition("dropping")
            self._persist()
            return 1
        if journal.state == "dropping":
            executed = self._run_batch(journal.plan.drops, "drops_done", budget)
            if journal.drops_done == len(journal.plan.drops):
                self._complete_forward()
                return max(executed, 1)
            if executed:
                self._persist()
            return executed
        raise AssertionError(f"unexpected forward state {journal.state!r}")

    def _complete_forward(self) -> None:
        journal = self.journal
        if journal.new_num_partitions < self.cluster.num_partitions:
            # Shrink: the evacuated partitions are empty now that the drops
            # ran; removing them is the last act before "completed".
            self.cluster.shrink_to(journal.new_num_partitions)
        self._transition("completed")
        self._persist()

    def _flip_forward(self) -> None:
        journal = self.journal
        if journal.flip_mode == "delta":
            self.migrator.apply_routing_delta(self.router, journal.plan, self.report)
        else:
            merged, pinned = self._merged_target(
                journal.new_num_partitions, dict(journal.plan.changes)
            )
            if not journal.tuples_pinned:
                # The controller counts pins at planning time (and stores
                # the count in the journal); keep that figure when present.
                journal.tuples_pinned = pinned
            new_strategy = LookupTablePartitioning(
                journal.new_num_partitions, merged, journal.default_policy
            )
            new_table = build_lookup_table(merged, backend=journal.lookup_backend)
            self.router.replace_strategy(new_strategy, new_table)
            self.report.lookup_swapped = True
        self.router.migration_window.close()

    def _merged_target(
        self, num_partitions: int, overrides: dict[TupleId, frozenset[int]]
    ) -> tuple[PartitionAssignment, int]:
        """Full explicit placement for a wholesale swap at ``num_partitions``.

        ``overrides`` (the routing delta, or its inverse during rollback)
        wins; every other *stored* tuple is pinned to its physical location
        — which also captures tuples inserted by live traffic while the
        migration was in flight, whose implicit hash placement would change
        meaning with the partition count.  Returns the assignment and the
        number of tuples pinned that had no explicit entry before.
        """
        merged = PartitionAssignment(num_partitions)
        for tuple_id, partitions in overrides.items():
            merged.assign(tuple_id, partitions)
        strategy = self.router.strategy
        deployed = (
            strategy.assignment if isinstance(strategy, LookupTablePartitioning) else None
        )
        pinned = 0
        for tuple_id, locations in sorted(self.cluster.tuple_locations_map().items()):
            if tuple_id in merged:
                continue
            valid = frozenset(part for part in locations if part < num_partitions)
            if not valid:
                valid = hash_home(tuple_id, num_partitions)
            merged.assign(tuple_id, valid)
            if deployed is None or tuple_id not in deployed:
                pinned += 1
        return merged, pinned

    # -- rollback path -----------------------------------------------------------------
    def _step_rollback(self, budget: int) -> int:
        journal = self.journal
        plan = journal.plan
        # Phase 1: restore the old replicas the forward drops removed.
        if journal.rollback_restored < journal.drops_done:
            executed = self._run_restore_batch(budget)
            if executed or journal.rollback_restored == journal.drops_done:
                self._persist()
            if journal.rollback_restored < journal.drops_done or executed:
                return executed
        # Phase 2: revert the routing flip (once, if it had happened).
        if journal.flip_done and not journal.rollback_flip_done:
            self._flip_back()
            journal.rollback_flip_done = True
            self._persist()
            return 1
        # Phase 3: remove the replicas the forward copies added.
        if journal.rollback_removed < journal.copies_done:
            executed = self._run_remove_batch(budget)
            if journal.rollback_removed == journal.copies_done:
                self._complete_rollback()
                return max(executed, 1)
            if executed:
                self._persist()
            return executed
        self._complete_rollback()
        return 1

    def _complete_rollback(self) -> None:
        journal = self.journal
        self.router.migration_window.close()
        if (
            journal.new_num_partitions > journal.old_num_partitions
            and self.cluster.num_partitions > journal.old_num_partitions
        ):
            # A cancelled grow removes the partitions it added; rollback just
            # emptied them (every added replica was dropped).
            self.cluster.shrink_to(journal.old_num_partitions)
        self._transition("cancelled")
        self._persist()

    def _flip_back(self) -> None:
        journal = self.journal
        previous = dict(journal.plan.previous)
        if journal.flip_mode == "delta":
            table = self.router.lookup_table
            if table is not None:
                table.apply_delta(journal.plan.previous)
            strategy = self.router.strategy
            if isinstance(strategy, LookupTablePartitioning):
                for tuple_id, partitions in journal.plan.previous:
                    strategy.assignment.assign(tuple_id, partitions)
        else:
            merged, _ = self._merged_target(journal.old_num_partitions, previous)
            old_strategy = LookupTablePartitioning(
                journal.old_num_partitions, merged, journal.default_policy
            )
            old_table = build_lookup_table(merged, backend=journal.lookup_backend)
            self.router.replace_strategy(old_strategy, old_table)
        self.router.migration_window.close()

    def _run_restore_batch(self, budget: int) -> int:
        journal = self.journal
        drops = journal.plan.drops
        executed = 0
        while journal.rollback_restored < journal.drops_done and executed < budget:
            step = drops[journal.rollback_restored]
            source = min(self._new_placement[step.tuple_id])
            restore = MigrationStep("copy", step.tuple_id, source, step.source)
            if not self._fault_gate(restore):
                break
            self.migrator._copy(restore, self.report)
            journal.rollback_restored += 1
            executed += 1
        return executed

    def _run_remove_batch(self, budget: int) -> int:
        journal = self.journal
        copies = journal.plan.copies
        executed = 0
        while journal.rollback_removed < journal.copies_done and executed < budget:
            step = copies[journal.rollback_removed]
            remove = MigrationStep("drop", step.tuple_id, step.target)
            if not self._fault_gate(remove):
                break
            self.migrator._drop(remove, self.report)
            journal.rollback_removed += 1
            executed += 1
        return executed

    # -- shared machinery --------------------------------------------------------------
    def _run_batch(self, steps: list[MigrationStep], cursor: str, budget: int) -> int:
        journal = self.journal
        done = getattr(journal, cursor)
        executed = 0
        while done < len(steps) and executed < budget:
            step = steps[done]
            if not self._fault_gate(step):
                break
            if step.action == "copy":
                self.migrator._copy(step, self.report)
            else:
                self.migrator._drop(step, self.report)
            done += 1
            executed += 1
        setattr(journal, cursor, done)
        if executed:
            self.report.progress.append((self.report.copies, self.report.drops))
        return executed

    def _fault_gate(self, step: MigrationStep) -> bool:
        """Draw this step's fault outcomes; False defers it to a later tick.

        All draws happen before the operation touches storage, so a deferred
        step has no side effects and its retry is a clean replay.
        """
        injector = self.injector
        if injector is None:
            return True
        nodes = (
            (step.source,)
            if step.action == "drop"
            else (step.source, step.target)
        )
        for node in nodes:
            if not injector.node_available(node):
                injector.statistics.unavailability_hits += 1
                self.report.faults_deferred += 1
                return False
        try:
            # Worst-case message complement of the step: read + write pairs
            # for a copy, one delete pair for a drop.
            for _ in range(4 if step.action == "copy" else 2):
                injector.deliver()
        except MessageDropped:
            self.report.faults_deferred += 1
            return False
        return True

    def _persist(self) -> None:
        """Write one journal record; may raise an injected coordinator death.

        The record is durable in the sink *before* the injector gets to kill
        the coordinator, which is the crash model the resume tests exercise:
        everything journalled has been applied, everything applied since the
        last record replays idempotently.
        """
        journal = self.journal
        journal.records += 1
        self._records_counter.inc()
        if self.sink is not None:
            self.sink.write(journal.dumps())
        if self.injector is not None:
            self.injector.on_journal_record(journal.state, journal.records)
