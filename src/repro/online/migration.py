"""Live migration: turning an assignment delta into ordered data movement.

Given the deployed placement and the re-partitioner's new one, the planner
emits per-tuple steps in a **copy-before-drop** order: every tuple is first
copied to each newly-assigned partition (reading from one of its current
replicas), and only once all copies exist are the stale replicas dropped.
At no point is a tuple stored on zero of its old-or-new partitions, so reads
routed under either the old or the new lookup table always find a replica —
the downtime-free property the executor reports progress on.

The executor applies the plan to a :class:`~repro.distributed.cluster.Cluster`
with message accounting consistent with the 2PC coordinator (one
request/response pair per remote read, write, or delete).  The controller
sequences it as copies -> routing update -> drops, so the routing state is
only ever consulted while every affected tuple exists at both its old and
its new location.  Two routing-update paths exist:

* :meth:`LiveMigrator.apply_routing_delta` — for exact lookup backends
  (``supports_update()``), only the changed entries are re-written in
  place: O(moved tuples), each entry flip atomic;
* :meth:`LiveMigrator.swap_routing` — for backends that cannot narrow
  entries (Bloom filters), the replacement table is fully built off to the
  side and published with a single reference assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.catalog.tuples import TupleId
from repro.core.strategies import LookupTablePartitioning
from repro.distributed.cluster import Cluster
from repro.graph.assignment import PartitionAssignment
from repro.routing.lookup import build_lookup_table
from repro.routing.router import Router


@dataclass(frozen=True)
class MigrationStep:
    """One unit of data movement.

    ``action`` is ``"copy"`` (read the tuple from ``source``, write it to
    ``target``) or ``"drop"`` (delete the replica on ``source``; ``target``
    is -1).
    """

    action: str
    tuple_id: TupleId
    source: int
    target: int = -1


@dataclass
class MigrationPlan:
    """Ordered migration steps plus summary statistics."""

    num_partitions: int
    #: all copy steps, ordered before every drop step.
    copies: list[MigrationStep] = field(default_factory=list)
    drops: list[MigrationStep] = field(default_factory=list)
    #: the routing delta: new placement per changed tuple, for apply_delta.
    changes: list[tuple[TupleId, frozenset[int]]] = field(default_factory=list)
    #: tuples whose placement changed at all.
    tuples_changed: int = 0
    #: tuples that gained at least one replica (replication widened).
    tuples_replicated: int = 0
    #: tuples that moved (new placement disjoint additions + drops).
    tuples_moved: int = 0
    #: per-replica accounting: partitions added / removed across all tuples
    #: (each added replica is one copy to execute, each removed one a drop).
    replicas_added: int = 0
    replicas_dropped: int = 0

    @property
    def steps(self) -> list[MigrationStep]:
        """All steps in execution order (copies first, then drops)."""
        return self.copies + self.drops

    @property
    def is_empty(self) -> bool:
        """Whether the plan does nothing."""
        return not self.copies and not self.drops


def plan_migration(
    old_placement: Callable[[TupleId], frozenset[int]],
    new_assignment: PartitionAssignment,
) -> MigrationPlan:
    """Diff the deployed placement against ``new_assignment``.

    Parameters
    ----------
    old_placement:
        Resolver for the *current* physical location of a tuple.  Passing
        the deployed strategy's ``partitions_for_tuple`` (rather than a bare
        assignment lookup) means tuples that were routed by the default
        policy — e.g. hash-placed tuples the training trace never saw — are
        migrated from where they actually live.
    new_assignment:
        The target placement for every tuple the re-partitioner assigned.
        Tuples absent from it keep their current placement (no steps).
    """
    plan = MigrationPlan(new_assignment.num_partitions)
    for tuple_id in sorted(new_assignment):
        new_parts = new_assignment.partitions_of(tuple_id)
        assert new_parts is not None
        old_parts = old_placement(tuple_id)
        if not old_parts:
            raise ValueError(f"tuple {tuple_id} has no current placement to migrate from")
        if new_parts == old_parts:
            continue
        plan.tuples_changed += 1
        plan.changes.append((tuple_id, new_parts))
        added = new_parts - old_parts
        removed = old_parts - new_parts
        plan.replicas_added += len(added)
        plan.replicas_dropped += len(removed)
        if added and not removed:
            plan.tuples_replicated += 1
        if removed:
            plan.tuples_moved += 1
        # Copy from a deterministic existing replica.
        source = min(old_parts)
        for target in sorted(added):
            plan.copies.append(MigrationStep("copy", tuple_id, source, target))
        for stale in sorted(removed):
            plan.drops.append(MigrationStep("drop", tuple_id, stale))
    return plan


@dataclass
class MigrationReport:
    """Execution record of one migration."""

    copies: int = 0
    drops: int = 0
    skipped: int = 0
    messages: int = 0
    bytes_copied: int = 0
    #: cumulative (copies done, drops done) after each executed batch — the
    #: "downtime-free progress" trail: copies always complete before drops
    #: begin, so every prefix leaves all tuples reachable.
    progress: list[tuple[int, int]] = field(default_factory=list)
    lookup_swapped: bool = False

    def describe(self) -> str:
        """One-line summary for logs and experiment reports."""
        return (
            f"migration: {self.copies} copies, {self.drops} drops "
            f"({self.skipped} skipped), {self.messages} messages, "
            f"{self.bytes_copied} bytes"
        )


class LiveMigrator:
    """Executes migration plans against a cluster and swaps routing state."""

    def __init__(self, cluster: Cluster, batch_size: int = 64) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.cluster = cluster
        self.batch_size = batch_size

    def execute(self, plan: MigrationPlan) -> MigrationReport:
        """Apply ``plan`` to the cluster (copies first, then drops)."""
        report = self.execute_copies(plan)
        return self.execute_drops(plan, report)

    def execute_copies(
        self,
        plan: MigrationPlan,
        report: MigrationReport | None = None,
        allow_fewer_partitions: bool = False,
    ) -> MigrationReport:
        """Apply only the copy steps — every tuple becomes dually resident."""
        return self._execute_steps(plan, plan.copies, report, allow_fewer_partitions)

    def execute_drops(
        self,
        plan: MigrationPlan,
        report: MigrationReport,
        allow_fewer_partitions: bool = False,
    ) -> MigrationReport:
        """Apply only the drop steps (call after the routing update)."""
        return self._execute_steps(plan, plan.drops, report, allow_fewer_partitions)

    def _execute_steps(
        self,
        plan: MigrationPlan,
        steps: list[MigrationStep],
        report: MigrationReport | None = None,
        allow_fewer_partitions: bool = False,
    ) -> MigrationReport:
        # Only the elastic shrink path may execute a plan targeting fewer
        # partitions than the cluster still has (it removes the evacuated
        # partitions after the drops, and says so via the flag).  Everywhere
        # else a count mismatch means a stale or misdirected plan.
        if plan.num_partitions != self.cluster.num_partitions and not (
            allow_fewer_partitions and plan.num_partitions < self.cluster.num_partitions
        ):
            raise ValueError("plan and cluster disagree on the number of partitions")
        if report is None:
            report = MigrationReport()
        pending = 0
        for step in steps:
            if step.action == "copy":
                self._copy(step, report)
            else:
                self._drop(step, report)
            pending += 1
            if pending >= self.batch_size:
                report.progress.append((report.copies, report.drops))
                pending = 0
        if pending:
            report.progress.append((report.copies, report.drops))
        return report

    def _copy(self, step: MigrationStep, report: MigrationReport) -> None:
        # Read from source: one request/response pair.
        report.messages += 2
        copied_bytes = self.cluster.copy_tuple(step.tuple_id, step.source, step.target)
        if copied_bytes is None:
            # The tuple vanished (e.g. deleted by live traffic between
            # planning and execution): nothing to copy, routing will miss it
            # everywhere, which is consistent.
            report.skipped += 1
            return
        if copied_bytes == 0:
            # The target already held the replica (e.g. a plan replayed
            # after a crash between copies and drops): nothing was written,
            # so no write messages and no copy is recorded — mirroring how
            # dropping an absent replica reports a skip.
            report.skipped += 1
            return
        # Write to target: one request/response pair.
        report.messages += 2
        report.bytes_copied += copied_bytes
        report.copies += 1

    def _drop(self, step: MigrationStep, report: MigrationReport) -> None:
        report.messages += 2
        if self.cluster.drop_tuple(step.tuple_id, step.source):
            report.drops += 1
        else:
            report.skipped += 1

    def apply_routing_delta(
        self, router: Router, plan: MigrationPlan, report: MigrationReport
    ) -> None:
        """Publish the new placement by re-writing only the changed entries.

        The O(moved tuples) routing-update path for exact lookup backends
        (``supports_update()``): each ``put`` flips one tuple's entry from
        its old to its new placement — individually atomic, and safe at any
        interleaving because the copies already ran (both placements are
        physically valid until the drops execute).
        """
        table = router.lookup_table
        if table is not None:
            table.apply_delta(plan.changes)
        strategy = router.strategy
        if isinstance(strategy, LookupTablePartitioning):
            for tuple_id, partitions in plan.changes:
                strategy.assignment.assign(tuple_id, partitions)
        report.lookup_swapped = True

    def swap_routing(
        self,
        router: Router,
        new_assignment: PartitionAssignment,
        report: MigrationReport,
        lookup_backend: str = "dict",
    ) -> None:
        """Atomically publish the new placement as a wholesale table swap.

        The fallback for backends that cannot narrow entries in place
        (Bloom filters): the replacement lookup table is built completely
        before a single reference assignment swaps it in; the strategy's
        assignment is updated the same way.  In CPython both rebinds are
        atomic, so a concurrent ``route_statement`` sees a consistent table.
        """
        new_table = build_lookup_table(new_assignment, backend=lookup_backend)
        strategy = router.strategy
        if isinstance(strategy, LookupTablePartitioning):
            strategy.assignment = new_assignment
        router.lookup_table = new_table
        report.lookup_swapped = True
