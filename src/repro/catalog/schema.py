"""Schema metadata for the simulated shared-nothing database.

The catalog is intentionally small: a :class:`Schema` is a set of
:class:`Table` objects, each with typed :class:`Column` definitions, a primary
key, and optional foreign keys.  The rest of the library (storage engine, SQL
parser, graph builder, explanation phase) consumes these objects rather than
raw strings so that mistakes such as referencing an unknown column surface as
early, explicit errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping, Sequence


class ColumnType(Enum):
    """Supported column types (the OLTP workloads only need these)."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"

    def python_type(self) -> type:
        """Return the Python type used to store values of this column type."""
        if self is ColumnType.INTEGER:
            return int
        if self is ColumnType.FLOAT:
            return float
        return str


@dataclass(frozen=True)
class Column:
    """A single typed column.

    ``byte_size`` feeds the data-size node weighting of the partitioning
    graph (Section 4.1 of the paper: node weight = tuple size in bytes).
    """

    name: str
    column_type: ColumnType = ColumnType.INTEGER
    byte_size: int = 8

    def validate_value(self, value: object) -> None:
        """Raise :class:`TypeError` if ``value`` does not match the column type."""
        expected = self.column_type.python_type()
        if expected is float and isinstance(value, int):
            return
        if not isinstance(value, expected):
            raise TypeError(
                f"column {self.name!r} expects {expected.__name__}, got {type(value).__name__}"
            )


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key reference from ``columns`` to ``parent_table.parent_columns``."""

    columns: tuple[str, ...]
    parent_table: str
    parent_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.parent_columns):
            raise ValueError("foreign key column lists must have equal length")


class Table:
    """Table metadata: named columns, a primary key, and foreign keys."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str],
        foreign_keys: Sequence[ForeignKey] = (),
    ) -> None:
        if not name:
            raise ValueError("table name must be non-empty")
        if not columns:
            raise ValueError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._columns_by_name: dict[str, Column] = {}
        for column in self.columns:
            if column.name in self._columns_by_name:
                raise ValueError(f"duplicate column {column.name!r} in table {name!r}")
            self._columns_by_name[column.name] = column
        self.primary_key: tuple[str, ...] = tuple(primary_key)
        if not self.primary_key:
            raise ValueError(f"table {name!r} must declare a primary key")
        for key_column in self.primary_key:
            if key_column not in self._columns_by_name:
                raise ValueError(
                    f"primary key column {key_column!r} not defined in table {name!r}"
                )
        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        for foreign_key in self.foreign_keys:
            for column_name in foreign_key.columns:
                if column_name not in self._columns_by_name:
                    raise ValueError(
                        f"foreign key column {column_name!r} not defined in table {name!r}"
                    )

    # -- lookups -----------------------------------------------------------------
    def column(self, name: str) -> Column:
        """Return the column named ``name`` or raise :class:`KeyError`."""
        return self._columns_by_name[name]

    def has_column(self, name: str) -> bool:
        """Return whether the table defines a column named ``name``."""
        return name in self._columns_by_name

    @property
    def column_names(self) -> tuple[str, ...]:
        """All column names in declaration order."""
        return tuple(column.name for column in self.columns)

    @property
    def row_byte_size(self) -> int:
        """Approximate bytes per row (sum of column sizes)."""
        return sum(column.byte_size for column in self.columns)

    # -- row helpers ---------------------------------------------------------------
    def validate_row(self, row: Mapping[str, object]) -> None:
        """Raise if ``row`` is missing columns, has extras, or has type errors."""
        missing = set(self.column_names) - set(row)
        if missing:
            raise ValueError(f"row for table {self.name!r} missing columns {sorted(missing)}")
        extra = set(row) - set(self.column_names)
        if extra:
            raise ValueError(f"row for table {self.name!r} has unknown columns {sorted(extra)}")
        for column in self.columns:
            column.validate_value(row[column.name])

    def primary_key_of(self, row: Mapping[str, object]) -> tuple[object, ...]:
        """Extract the primary-key tuple from ``row``."""
        return tuple(row[column] for column in self.primary_key)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, columns={list(self.column_names)}, pk={list(self.primary_key)})"


class Schema:
    """A named collection of tables."""

    def __init__(self, name: str, tables: Iterable[Table] = ()) -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add_table(table)

    def add_table(self, table: Table) -> None:
        """Register ``table``; duplicate names are an error."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already defined in schema {self.name!r}")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Return the table named ``name`` or raise :class:`KeyError`."""
        if name not in self._tables:
            raise KeyError(f"unknown table {name!r} in schema {self.name!r}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        """Return whether the schema defines a table named ``name``."""
        return name in self._tables

    @property
    def tables(self) -> tuple[Table, ...]:
        """All tables in insertion order."""
        return tuple(self._tables.values())

    @property
    def table_names(self) -> tuple[str, ...]:
        """All table names in insertion order."""
        return tuple(self._tables)

    def validate_foreign_keys(self) -> None:
        """Check that every foreign key references an existing table and columns."""
        for table in self.tables:
            for foreign_key in table.foreign_keys:
                if not self.has_table(foreign_key.parent_table):
                    raise ValueError(
                        f"table {table.name!r} references unknown table "
                        f"{foreign_key.parent_table!r}"
                    )
                parent = self.table(foreign_key.parent_table)
                for column_name in foreign_key.parent_columns:
                    if not parent.has_column(column_name):
                        raise ValueError(
                            f"table {table.name!r} references unknown column "
                            f"{foreign_key.parent_table}.{column_name}"
                        )

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, tables={list(self.table_names)})"


def integer_column(name: str, byte_size: int = 8) -> Column:
    """Convenience constructor for an integer column."""
    return Column(name, ColumnType.INTEGER, byte_size)


def float_column(name: str, byte_size: int = 8) -> Column:
    """Convenience constructor for a float column."""
    return Column(name, ColumnType.FLOAT, byte_size)


def string_column(name: str, byte_size: int = 32) -> Column:
    """Convenience constructor for a string column."""
    return Column(name, ColumnType.STRING, byte_size)
