"""Database catalog: schemas, tables, columns, keys, and tuple identity."""

from repro.catalog.schema import Column, ColumnType, ForeignKey, Schema, Table
from repro.catalog.tuples import TupleId, tuple_id_for_row

__all__ = [
    "Column",
    "ColumnType",
    "ForeignKey",
    "Schema",
    "Table",
    "TupleId",
    "tuple_id_for_row",
]
