"""Tuple identity.

Every component of the pipeline (read/write sets, the partitioning graph,
lookup tables, the cost model) refers to tuples by a :class:`TupleId`: the
table name plus the primary-key value(s).  Keeping the identity explicit and
hashable lets us move tuples between representations without carrying the full
row around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.catalog.schema import Table


@dataclass(frozen=True, order=True)
class TupleId:
    """Identity of a tuple: ``(table, primary-key values)``."""

    table: str
    key: tuple[object, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.key, tuple):
            # Accept a bare scalar for the common single-column primary key.
            object.__setattr__(self, "key", (self.key,))

    @property
    def single_key(self) -> object:
        """Return the key value for single-column primary keys."""
        if len(self.key) != 1:
            raise ValueError(f"tuple {self} has a composite key")
        return self.key[0]

    def __str__(self) -> str:
        key_repr = self.key[0] if len(self.key) == 1 else self.key
        return f"{self.table}:{key_repr}"


def tuple_id_for_row(table: Table, row: Mapping[str, object]) -> TupleId:
    """Build the :class:`TupleId` for ``row`` of ``table``."""
    return TupleId(table.name, table.primary_key_of(row))
