"""Unified telemetry layer: metrics, span tracing, status rendering.

The subsystem is zero-dependency and deterministic by construction:

* :class:`~repro.obs.metrics.MetricsRegistry` — labeled counters/gauges/
  fixed-bucket histograms whose canonical-JSON snapshot is byte-stable
  across runs and array backends (wall-clock families are ``volatile`` and
  excluded from the default snapshot);
* :class:`~repro.obs.tracing.Tracer` — parent/child spans with ids drawn
  from :class:`~repro.utils.rng.SeededRng`, never from the clock;
* :mod:`repro.obs.status` — human-readable rendering of migration sessions
  and journal files for ``repro status`` / ``repro journal inspect``;
* :mod:`repro.obs.schema` — a minimal JSON-Schema validator used by CI to
  check exported snapshots against ``docs/metrics_schema.json``.

Components do not take a telemetry argument; they resolve the process-wide
:class:`Telemetry` bundle via :func:`get_telemetry` **at construction time**
and cache instrument handles.  The default bundle is a null singleton whose
instruments are shared no-ops, so uninstrumented runs pay one empty method
call per instrumentation point.  The CLI (or a test) installs an enabled
bundle with :func:`set_telemetry`/:func:`use_telemetry` *before* building
the objects it wants instrumented.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.clock import Stopwatch
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    RATE_BUCKETS,
    SECONDS_BUCKETS,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer


class Telemetry:
    """A metrics registry and a tracer travelling together."""

    __slots__ = ("metrics", "tracer", "seed", "enabled")

    def __init__(self, metrics: MetricsRegistry, tracer: Tracer, seed: int = 0) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.seed = seed
        self.enabled = metrics.enabled or tracer.enabled

    @classmethod
    def create(cls, seed: int = 0) -> "Telemetry":
        """A fully enabled bundle whose span ids derive from ``seed``."""
        return cls(MetricsRegistry(), Tracer(seed), seed)


#: the shared disabled bundle installed by default.
NULL_TELEMETRY = Telemetry(NULL_REGISTRY, NULL_TRACER, 0)

_current: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """The process-wide telemetry bundle (the null bundle unless installed)."""
    return _current


def set_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """Install ``telemetry`` (or the null bundle for ``None``); returns the old one."""
    global _current
    previous = _current
    _current = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry | None):
    """Context manager that installs ``telemetry`` and restores the previous bundle."""
    previous = set_telemetry(telemetry)
    try:
        yield get_telemetry()
    finally:
        set_telemetry(previous)


def trace_span(name: str, **attributes: object):
    """Open a span on the current bundle's tracer (no-op when disabled)."""
    return _current.tracer.span(name, **attributes)


def trace_event(name: str, **attributes: object) -> None:
    """Record an event on the current bundle's tracer (no-op when disabled)."""
    _current.tracer.event(name, **attributes)


__all__ = [
    "DEFAULT_BUCKETS",
    "RATE_BUCKETS",
    "SECONDS_BUCKETS",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Stopwatch",
    "Telemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "trace_span",
    "trace_event",
]
