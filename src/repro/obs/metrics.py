"""Deterministic metrics: labeled counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` holds **families** keyed by name; each family owns
one series per label-value combination.  Three instrument kinds:

* **counter** — monotone float/int accumulator (``inc``);
* **gauge** — last-write-wins value (``set``/``add``);
* **histogram** — fixed upper-bound buckets with exact count/sum/min/max and
  bucket-derived p50/p95/p99 (the quantile is the upper bound of the bucket
  the cumulative count crosses, so it is a pure function of the counts).

Snapshots are canonical JSON (:func:`repro.utils.canonical_json.dumps_canonical`)
and **byte-stable**: families and series are emitted in sorted order, values
are plain JSON scalars, and nothing backend-specific (numpy scalars are
coerced at observation time) can leak in.  Two runs that observe the same
value sequence produce identical snapshot bytes on either array backend.

Wall-clock measurements are the one non-deterministic input the system has.
Families that record them are created with ``volatile=True`` and are
**excluded from the default snapshot** — ``snapshot(include_volatile=True)``
opts back in for live inspection — so the exported snapshot of a seeded run
is byte-identical run-to-run, which is what the resilience chaos CI compares.

The :data:`NULL_REGISTRY` implements the same surface as no-ops on shared
singletons, so uninstrumented runs pay one attribute lookup and an empty
method call per instrumentation point.
"""

from __future__ import annotations

from repro.utils.canonical_json import dumps_canonical

#: snapshot format marker and version; bump on breaking changes.
METRICS_FORMAT = "repro-metrics"
METRICS_FORMAT_VERSION = 1

#: powers-of-two buckets for message-count / latency-proxy style values.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
    256.0, 512.0, 1024.0, 2048.0, 4096.0,
)

#: buckets for rates and fractions in [0, 1].
RATE_BUCKETS: tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0,
)

#: buckets for wall-clock seconds (volatile families only).
SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Counter:
    """One monotone series of a counter family."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        self.value += amount

    def to_payload(self) -> dict:
        return {"value": self.value}


class Gauge:
    """One last-write-wins series of a gauge family."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = value

    def add(self, amount: float = 1) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.value += amount

    def to_payload(self) -> dict:
        return {"value": self.value}


class Histogram:
    """One fixed-bucket series of a histogram family.

    ``buckets`` are inclusive upper bounds; an implicit +inf bucket catches
    overflow.  Quantiles resolve to the upper bound of the bucket where the
    cumulative count crosses the quantile (the overflow bucket reports the
    exact observed maximum), so p50/p95/p99 are pure functions of the counts
    — deterministic whenever the observations are.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.sum: float = 0.0
        self.min: float = 0.0
        self.max: float = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if self.count == 0:
            self.min = self.max = value
        elif value < self.min:
            self.min = value
        elif value > self.max:
            self.max = value
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (0 when empty)."""
        if self.count == 0:
            return 0.0
        # ceil(q * count) observations lie at or below the answer.
        target = -(-int(q * 1_000_000) * self.count // 1_000_000)
        target = max(1, min(self.count, target))
        cumulative = 0
        for index, observed in enumerate(self.bucket_counts):
            cumulative += observed
            if cumulative >= target:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.max
        return self.max

    def to_payload(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "bucket_counts": list(self.bucket_counts),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


_KIND_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All series of one named metric, one per label-value combination."""

    __slots__ = ("name", "kind", "help", "label_names", "volatile", "buckets", "_series")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        volatile: bool = False,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.volatile = volatile
        self.buckets = tuple(float(bound) for bound in buckets)
        self._series: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def labels(self, **label_values: object):
        """The series for one label-value combination (created on first use)."""
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"family {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}"
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        series = self._series.get(key)
        if series is None:
            if self.kind == "histogram":
                series = Histogram(self.buckets)
            else:
                series = _KIND_CLASSES[self.kind]()
            self._series[key] = series
        return series

    # -- label-resolving conveniences (hot paths should hold a series ref) ---------
    def inc(self, amount: float = 1, **label_values: object) -> None:
        """Increment the counter series selected by ``label_values``."""
        self.labels(**label_values).inc(amount)

    def set(self, value: float, **label_values: object) -> None:
        """Set the gauge series selected by ``label_values``."""
        self.labels(**label_values).set(value)

    def observe(self, value: float, **label_values: object) -> None:
        """Observe into the histogram series selected by ``label_values``."""
        self.labels(**label_values).observe(value)

    def to_payload(self) -> dict:
        payload: dict = {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "series": [
                dict(
                    {"labels": dict(zip(self.label_names, key))},
                    **series.to_payload(),
                )
                for key, series in sorted(self._series.items())
            ],
        }
        if self.kind == "histogram":
            payload["buckets"] = list(self.buckets)
        return payload


class MetricsRegistry:
    """Registry of metric families; the write side of the telemetry layer."""

    enabled = True

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: tuple[str, ...],
        volatile: bool,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help, labels, volatile, buckets)
            self._families[name] = family
            return family
        if family.kind != kind or family.label_names != tuple(labels):
            raise ValueError(
                f"metric family {name!r} already registered as "
                f"{family.kind}{family.label_names}, not {kind}{tuple(labels)}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labels: tuple[str, ...] = (), volatile: bool = False
    ) -> MetricFamily:
        """Get or create a counter family."""
        return self._family(name, "counter", help, labels, volatile)

    def gauge(
        self, name: str, help: str = "", labels: tuple[str, ...] = (), volatile: bool = False
    ) -> MetricFamily:
        """Get or create a gauge family."""
        return self._family(name, "gauge", help, labels, volatile)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        volatile: bool = False,
    ) -> MetricFamily:
        """Get or create a fixed-bucket histogram family."""
        return self._family(name, "histogram", help, labels, volatile, buckets)

    def family_names(self, include_volatile: bool = False) -> list[str]:
        """Sorted names of the registered families."""
        return sorted(
            name
            for name, family in self._families.items()
            if include_volatile or not family.volatile
        )

    def snapshot(self, include_volatile: bool = False) -> dict:
        """Canonical-JSON-serialisable snapshot of every family.

        Volatile (wall-clock) families are excluded by default so the
        snapshot of a seeded run is byte-identical run-to-run.
        """
        return {
            "format": METRICS_FORMAT,
            "version": METRICS_FORMAT_VERSION,
            "families": {
                name: family.to_payload()
                for name, family in sorted(self._families.items())
                if include_volatile or not family.volatile
            },
        }

    def dumps(self, include_volatile: bool = False) -> str:
        """Canonical JSON text (sorted keys, trailing newline) of the snapshot."""
        return dumps_canonical(self.snapshot(include_volatile)) + "\n"


# ---------------------------------------------------------------------------
# Null implementations — shared no-op singletons.
# ---------------------------------------------------------------------------
class _NullSeries:
    """No-op counter/gauge/histogram; a single instance serves every series."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float = 1) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_SERIES = _NullSeries()


class _NullFamily:
    """No-op family; ``labels`` always resolves to the shared null series."""

    __slots__ = ()

    def labels(self, **label_values: object) -> _NullSeries:
        return _NULL_SERIES

    def inc(self, amount: float = 1, **label_values: object) -> None:
        pass

    def set(self, value: float, **label_values: object) -> None:
        pass

    def observe(self, value: float, **label_values: object) -> None:
        pass


_NULL_FAMILY = _NullFamily()


class NullMetricsRegistry(MetricsRegistry):
    """Uninstrumented mode: every family is the shared no-op singleton."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = (), volatile: bool = False):
        return _NULL_FAMILY

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = (), volatile: bool = False):
        return _NULL_FAMILY

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        volatile: bool = False,
    ):
        return _NULL_FAMILY


#: the process-wide no-op registry (see :mod:`repro.obs`).
NULL_REGISTRY = NullMetricsRegistry()
