"""A minimal JSON-Schema validator for telemetry snapshots.

The CI metrics-smoke job validates exported ``--metrics-out`` snapshots
against ``docs/metrics_schema.json``.  The toolchain bakes in no
``jsonschema`` package, so this module implements the small subset of JSON
Schema the checked-in schema actually uses: ``type``, ``const``, ``enum``,
``required``, ``properties``, ``additionalProperties``, ``items``,
``minimum``, and ``$ref`` into ``#/definitions``.

:func:`validate` raises :class:`SchemaError` with a JSON-pointer-style path
on the first violation; :func:`iter_errors` collects every violation.
"""

from __future__ import annotations

from typing import Iterator, Mapping


class SchemaError(ValueError):
    """A document does not conform to its schema."""


_TYPE_CHECKS = {
    "object": lambda value: isinstance(value, Mapping),
    "array": lambda value: isinstance(value, (list, tuple)),
    "string": lambda value: isinstance(value, str),
    "integer": lambda value: isinstance(value, int) and not isinstance(value, bool),
    "number": lambda value: isinstance(value, (int, float)) and not isinstance(value, bool),
    "boolean": lambda value: isinstance(value, bool),
    "null": lambda value: value is None,
}


def _resolve(schema: Mapping, root: Mapping) -> Mapping:
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise SchemaError(f"unsupported $ref {ref!r} (only #/ fragments)")
    node: object = root
    for part in ref[2:].split("/"):
        if not isinstance(node, Mapping) or part not in node:
            raise SchemaError(f"$ref {ref!r} does not resolve")
        node = node[part]
    if not isinstance(node, Mapping):
        raise SchemaError(f"$ref {ref!r} is not a schema")
    return node


def iter_errors(document: object, schema: Mapping, root: Mapping | None = None, path: str = "$") -> Iterator[str]:
    """Yield a message per violation of ``schema`` by ``document``."""
    if root is None:
        root = schema
    schema = _resolve(schema, root)

    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[type_name](document) for type_name in types):
            yield f"{path}: expected type {expected}, got {type(document).__name__}"
            return

    if "const" in schema and document != schema["const"]:
        yield f"{path}: expected const {schema['const']!r}, got {document!r}"
    if "enum" in schema and document not in schema["enum"]:
        yield f"{path}: {document!r} not in enum {schema['enum']!r}"
    if "minimum" in schema and isinstance(document, (int, float)) and not isinstance(document, bool):
        if document < schema["minimum"]:
            yield f"{path}: {document!r} below minimum {schema['minimum']!r}"

    if isinstance(document, Mapping):
        for key in schema.get("required", ()):
            if key not in document:
                yield f"{path}: missing required property {key!r}"
        properties = schema.get("properties", {})
        for key, value in document.items():
            if key in properties:
                yield from iter_errors(value, properties[key], root, f"{path}.{key}")
            else:
                additional = schema.get("additionalProperties", True)
                if additional is False:
                    yield f"{path}: unexpected property {key!r}"
                elif isinstance(additional, Mapping):
                    yield from iter_errors(value, additional, root, f"{path}.{key}")

    if isinstance(document, (list, tuple)):
        items = schema.get("items")
        if isinstance(items, Mapping):
            for index, value in enumerate(document):
                yield from iter_errors(value, items, root, f"{path}[{index}]")


def validate(document: object, schema: Mapping) -> None:
    """Raise :class:`SchemaError` on the first violation (no-op when valid)."""
    for message in iter_errors(document, schema):
        raise SchemaError(message)
