"""The one wall-clock timing primitive of the telemetry layer.

Every timed region in the system — pipeline stage timings
(:class:`~repro.pipeline.config.PhaseTimings`), experiment stopwatches
(``repro.utils.timer.Timer`` is a thin alias), and the duration side of
tracing spans — measures through :class:`Stopwatch`, so there is exactly one
timing code path.  Wall-clock readings are *observability-only*: they never
feed span ids, metric snapshot bytes, or any other content that must be
byte-deterministic across runs (see :mod:`repro.obs.metrics` on volatile
families).
"""

from __future__ import annotations

import time


class Stopwatch:
    """Context-manager stopwatch over ``time.perf_counter``.

    Example
    -------
    >>> with Stopwatch() as watch:
    ...     sum(range(10))
    >>> watch.elapsed >= 0.0
    True
    """

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Stopwatch was never started")
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed
