"""Deterministic span tracing.

A :class:`Tracer` records a tree of **spans** — named regions of work with
explicit parent/child relationships.  Span ids are drawn from a
:class:`~repro.utils.rng.SeededRng` sub-stream (``fork("obs.spans")``), so a
seeded run produces the same id sequence every time; wall-clock never enters
an id.  Durations *are* measured (via :class:`~repro.obs.clock.Stopwatch`)
but live on the span object only — the deterministic payload
(:meth:`Tracer.finished_payload`) excludes them, mirroring the volatile-family
rule in :mod:`repro.obs.metrics`.

Spans follow strict stack discipline per tracer: ``span()`` is a context
manager, children open and close inside their parent, and an exception
unwinds the stack closing each span with ``status="error"``.  Finished spans
accumulate in a bounded list (oldest dropped first, with a drop counter) so a
long chaos run cannot grow memory without bound.

:data:`NULL_TRACER` is the shared no-op used when telemetry is disabled.
"""

from __future__ import annotations

from collections import deque

from repro.obs.clock import Stopwatch
from repro.utils.rng import SeededRng

#: finished spans retained before the oldest are dropped.
DEFAULT_SPAN_CAPACITY = 20_000
#: trace events retained (deque, oldest evicted silently).
DEFAULT_EVENT_CAPACITY = 20_000


class Span:
    """One named region of work inside a trace tree."""

    __slots__ = ("name", "span_id", "parent_id", "depth", "sequence", "attributes",
                 "status", "events", "duration", "_watch")

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: str | None,
        depth: int,
        sequence: int,
        attributes: dict,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.sequence = sequence
        self.attributes = attributes
        self.status = "ok"
        self.events: list[dict] = []
        self.duration = 0.0
        self._watch = Stopwatch()

    def set_attribute(self, key: str, value: object) -> None:
        """Attach a key/value attribute to the span."""
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: object) -> None:
        """Record a point-in-time event inside the span."""
        self.events.append({"name": name, "attributes": dict(attributes)})

    def to_payload(self) -> dict:
        """Deterministic dict form — no durations, no wall-clock."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "sequence": self.sequence,
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": [dict(event) for event in self.events],
        }


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.status = "error"
            self._span.set_attribute("error_type", exc_type.__name__)
        self._tracer._pop(self._span)


class Tracer:
    """Seeded span tracer with strict stack discipline.

    Parameters
    ----------
    seed:
        Root seed for the span-id stream (``SeededRng(seed).fork("obs.spans")``).
    capacity:
        Maximum finished spans retained; older spans are dropped and counted
        in :attr:`dropped_spans`.
    """

    enabled = True

    def __init__(
        self,
        seed: int = 0,
        capacity: int = DEFAULT_SPAN_CAPACITY,
        event_capacity: int = DEFAULT_EVENT_CAPACITY,
    ) -> None:
        self._ids = SeededRng(seed).fork("obs.spans")
        self._capacity = capacity
        self._stack: list[Span] = []
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._events: deque[dict] = deque(maxlen=event_capacity)
        self._sequence = 0
        self.dropped_spans = 0

    def _next_id(self) -> str:
        return f"{self._ids.randint(0, 0xFFFFFFFFFFFFFFFF):016x}"

    def span(self, name: str, **attributes: object) -> _SpanContext:
        """Open a child span of the current span (or a root span).

        Use as a context manager::

            with tracer.span("partition.refine", level=2) as span:
                ...
                span.set_attribute("moves", moves)
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id(),
            parent_id=parent.span_id if parent else None,
            depth=len(self._stack),
            sequence=self._sequence,
            attributes=dict(attributes),
        )
        self._sequence += 1
        return _SpanContext(self, span)

    def event(self, name: str, **attributes: object) -> None:
        """Record an event on the current span (or as a free-standing event)."""
        if self._stack:
            self._stack[-1].add_event(name, **attributes)
        else:
            self._events.append({"name": name, "attributes": dict(attributes)})

    def current_span(self) -> Span | None:
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    # -- stack management (called by _SpanContext) -------------------------------
    def _push(self, span: Span) -> None:
        self._stack.append(span)
        span._watch.start()

    def _pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order; open stack: "
                f"{[open_span.name for open_span in self._stack]}"
            )
        self._stack.pop()
        span.duration = span._watch.stop()
        if len(self._finished) == self._capacity:
            self.dropped_spans += 1
        self._finished.append(span)

    # -- inspection ---------------------------------------------------------------
    @property
    def open_spans(self) -> list[Span]:
        """The currently open span stack, outermost first."""
        return list(self._stack)

    @property
    def finished_spans(self) -> list[Span]:
        """Finished spans in completion order (oldest may have been dropped)."""
        return list(self._finished)

    def finished_payload(self) -> list[dict]:
        """Deterministic payloads of the finished spans, in start order."""
        return [
            span.to_payload()
            for span in sorted(self._finished, key=lambda open_span: open_span.sequence)
        ]

    def check_well_formed(self) -> None:
        """Raise ``ValueError`` if the finished span tree is malformed.

        Checks that every finished span's parent either finished as well or
        is still open, that parents started before their children (sequence
        order), and that depths are consistent with the parent chain.  With
        all work complete and the stack empty this verifies every child
        closed inside its parent.
        """
        by_id = {span.span_id: span for span in self._finished}
        for span in self._stack:
            by_id[span.span_id] = span
        open_ids = {span.span_id for span in self._stack}
        for span in self._finished:
            if span.parent_id is None:
                if span.depth != 0:
                    raise ValueError(f"root span {span.name!r} has depth {span.depth}")
                continue
            parent = by_id.get(span.parent_id)
            if parent is None:
                # the parent may have been dropped from the bounded buffer
                if self.dropped_spans == 0:
                    raise ValueError(
                        f"span {span.name!r} references unknown parent {span.parent_id}"
                    )
                continue
            if parent.sequence >= span.sequence:
                raise ValueError(
                    f"span {span.name!r} started before its parent {parent.name!r}"
                )
            if span.depth != parent.depth + 1:
                raise ValueError(
                    f"span {span.name!r} depth {span.depth} inconsistent with "
                    f"parent {parent.name!r} depth {parent.depth}"
                )
            if span.parent_id not in open_ids and parent not in self._finished:
                raise ValueError(
                    f"span {span.name!r} finished but parent {parent.name!r} vanished"
                )


class _NullSpan:
    """Shared no-op span; also its own context manager."""

    __slots__ = ()
    name = ""
    span_id = ""
    parent_id = None
    status = "ok"
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def add_event(self, name: str, **attributes: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Disabled tracing: ``span()`` returns a shared no-op context manager."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(seed=0, capacity=1, event_capacity=1)

    def span(self, name: str, **attributes: object):
        return _NULL_SPAN

    def event(self, name: str, **attributes: object) -> None:
        pass


#: the process-wide no-op tracer (see :mod:`repro.obs`).
NULL_TRACER = NullTracer()
