"""Human-readable rendering of migration state for the CLI.

Two surfaces:

* :func:`render_status` — the ``repro status`` view of a migration: the
  journal's state machine with progress cursors, plus — when a live
  :class:`~repro.online.controller.MigrationSession` (or its pacer) is at
  hand — the pacer's window snapshot (p99, abort rate, step budget,
  pause/backoff).
* :func:`inspect_journal` — the ``repro journal inspect`` view: a journal
  file replayed into a phase-by-phase timeline.

Both work from duck-typed journal/pacer objects so this module stays
import-light (no cycle back into :mod:`repro.online`).
"""

from __future__ import annotations


def _journal_of(target):
    """Accept a journal or anything carrying one (a ``MigrationSession``)."""
    return getattr(target, "journal", target)


def _is_storage(journal) -> bool:
    """Whether the journal records a real-storage (SQLite) migration."""
    return getattr(journal, "backend", "simulated") == "storage"


def _forward_phase_rows(journal) -> list[tuple[str, str, str]]:
    """(marker, state, detail) rows for the forward half of the state machine."""
    total_copies = len(journal.plan.copies)
    total_drops = len(journal.plan.drops)
    storage = _is_storage(journal)
    order = ["planned", "copying", "dual-window", "flipped", "dropping", "completed"]
    if journal.state in order:
        position = order.index(journal.state)
    else:
        # On the rollback branch every forward phase up to the journalled
        # cursors had run; render how far forward progress got.
        position = len(order)
    rows = []
    for index, state in enumerate(order):
        if index < position:
            marker = "done"
        elif index == position:
            marker = "now"
        else:
            marker = "todo"
        if state == "copying":
            unit = "rows copied across partitions" if storage else "copies"
            detail = f"{journal.copies_done}/{total_copies} {unit}"
        elif state == "dropping":
            unit = "stale rows dropped" if storage else "drops"
            detail = f"{journal.drops_done}/{total_drops} {unit}"
        elif state == "dual-window":
            detail = "all tuples dually resident"
        elif state == "flipped":
            detail = "routing flip " + ("done" if journal.flip_done else "pending")
        else:
            detail = ""
        rows.append((marker, state, detail))
    return rows


def _rollback_phase_rows(journal) -> list[tuple[str, str, str]]:
    """(marker, phase, detail) rows for the rollback branch."""
    restore_total = journal.drops_done
    remove_total = journal.copies_done
    rows = []
    restore_done = journal.rollback_restored >= restore_total
    rows.append((
        "done" if restore_done else "now",
        "restore",
        f"{journal.rollback_restored}/{restore_total} replicas restored",
    ))
    flip_needed = journal.flip_done
    if flip_needed:
        flip_done = journal.rollback_flip_done
        rows.append((
            "done" if flip_done else ("now" if restore_done else "todo"),
            "flip-back",
            "routing reverted" if flip_done else "routing flip-back pending",
        ))
    else:
        flip_done = True
    remove_done = journal.rollback_removed >= remove_total
    rows.append((
        "done" if remove_done and journal.state == "cancelled"
        else ("now" if restore_done and flip_done else "todo"),
        "remove",
        f"{journal.rollback_removed}/{remove_total} added replicas removed",
    ))
    return rows


_MARKERS = {"done": "[x]", "now": "[>]", "todo": "[ ]"}


def _render_rows(rows: list[tuple[str, str, str]]) -> list[str]:
    width = max(len(state) for _, state, _ in rows)
    lines = []
    for marker, state, detail in rows:
        line = f"  {_MARKERS[marker]} {state.ljust(width)}"
        if detail:
            line += f"  {detail}"
        lines.append(line.rstrip())
    return lines


def render_pacer(pacer) -> list[str]:
    """The pacer window section of ``repro status`` (list of lines)."""
    window = pacer.snapshot()
    lines = [
        "pacer window:",
        f"  p99 latency   {window.p99_latency:g}"
        + (
            f"  (budget {window.p99_latency_budget:g})"
            if window.p99_latency_budget is not None
            else "  (no budget)"
        ),
        f"  abort rate    {window.abort_rate:.3f}"
        + (
            f"  (budget {window.abort_rate_budget:.3f})"
            if window.abort_rate_budget is not None
            else "  (no budget)"
        ),
        f"  samples       {window.latency_samples} latency / {window.abort_samples} outcomes",
        f"  step budget   {window.last_budget if window.last_budget is not None else 'not yet planned'}",
    ]
    if window.paused:
        lines.append(
            f"  paused        yes ({window.pause_remaining} ticks remaining, "
            f"backoff {window.backoff})"
        )
    else:
        lines.append(f"  paused        no (backoff {window.backoff})")
    lines.append(
        "  decisions     "
        f"{window.proceeds} proceed / {window.throttles} throttle / "
        f"{window.pauses} pause / {window.resumes} resume"
    )
    return lines


def render_status(target, pacer=None) -> str:
    """Render a migration session or journal as the ``repro status`` text.

    ``target`` is a :class:`~repro.online.controller.MigrationSession` or a
    bare :class:`~repro.online.migration.MigrationJournal` (e.g. loaded from
    a journal file).  A pacer window section appears when ``target`` carries
    a pacer (live session) or one is passed explicitly.
    """
    journal = _journal_of(target)
    if pacer is None:
        pacer = getattr(target, "pacer", None)
    direction = f"{journal.old_num_partitions} -> {journal.new_num_partitions} partitions"
    lines = [
        f"migration {journal.kind} ({direction}, flip={journal.flip_mode})",
    ]
    if _is_storage(journal):
        # A storage-backed journal drives real SQLite partition workers, so
        # the counters below are durable rows moved under the exactly-once
        # transaction-id namespace — not simulated-cluster bookkeeping.
        lines.append(
            "backend: storage (SQLite partition workers), "
            f"migration id {journal.migration_id}"
        )
    lines.extend([
        f"state: {journal.state}"
        + ("  [terminal]" if journal.is_terminal else ""),
        f"journal records: {journal.records}",
    ])
    if journal.tuples_pinned:
        lines.append(f"tuples pinned: {journal.tuples_pinned}")
    lines.append("forward progress:")
    lines.extend(_render_rows(_forward_phase_rows(journal)))
    if journal.state in ("cancelling", "cancelled"):
        lines.append("rollback progress:")
        lines.extend(_render_rows(_rollback_phase_rows(journal)))
    ticks = getattr(target, "ticks", None)
    if ticks is not None:
        lines.append(
            f"session: {ticks} ticks, {getattr(target, 'steps_executed', 0)} steps executed"
        )
    if pacer is not None:
        lines.extend(render_pacer(pacer))
    return "\n".join(lines) + "\n"


def inspect_journal(journal) -> str:
    """Replay a journal snapshot into a human-readable timeline.

    A journal file holds the *latest* snapshot, not an event log; the
    timeline is reconstructed from the cursors: every phase the state
    machine must have passed through to reach the journalled state, with
    the per-phase progress counts.
    """
    plan = journal.plan
    header = [
        f"journal: {journal.kind} migration, "
        f"{journal.old_num_partitions} -> {journal.new_num_partitions} partitions",
        f"flip mode: {journal.flip_mode} (backend {journal.lookup_backend}, "
        f"default policy {journal.default_policy})",
        f"plan: {len(plan.copies)} copies, {len(plan.drops)} drops, "
        f"{plan.tuples_changed} tuples changed "
        f"({plan.tuples_replicated} replicated, {plan.tuples_moved} moved)",
        f"records persisted: {journal.records}",
        "",
        "timeline:",
    ]
    events: list[str] = []

    def phase(description: str) -> None:
        events.append(f"  {len(events) + 1:2d}. {description}")

    phase("planned: journal opened")
    forward = ("copying", "dual-window", "flipped", "dropping", "completed")
    state = journal.state
    on_rollback = state in ("cancelling", "cancelled")
    reached = len(forward) if on_rollback else (
        forward.index(state) + 1 if state in forward else 0
    )
    if reached >= 1 or journal.copies_done:
        phase(
            f"copying: dual-write window opened, "
            f"{journal.copies_done}/{len(plan.copies)} copies executed"
        )
    if on_rollback:
        # How far forward progress got before the cancel is implied by the
        # cursors, not the state (which already moved to the branch).
        if journal.flip_done:
            phase("dual-window: every tuple dually resident")
            phase("flipped: routing updated to the new placement")
        if journal.drops_done:
            phase(f"dropping: {journal.drops_done}/{len(plan.drops)} stale replicas dropped")
        phase("cancelling: rollback branch taken")
        phase(
            f"rollback restore: {journal.rollback_restored}/{journal.drops_done} "
            f"dropped replicas restored"
        )
        if journal.flip_done:
            phase(
                "rollback flip-back: routing "
                + ("reverted" if journal.rollback_flip_done else "revert pending")
            )
        phase(
            f"rollback remove: {journal.rollback_removed}/{journal.copies_done} "
            f"added replicas removed"
        )
        if state == "cancelled":
            phase("cancelled: placement restored to the pre-migration state")
    else:
        if reached >= 2:
            phase("dual-window: every tuple dually resident")
        if reached >= 3:
            flip = "routing updated to the new placement"
            if journal.tuples_pinned:
                flip += f" ({journal.tuples_pinned} implicit placements pinned)"
            phase(f"flipped: {flip}")
        if reached >= 4 or journal.drops_done:
            phase(
                f"dropping: {journal.drops_done}/{len(plan.drops)} stale replicas dropped"
            )
        if state == "completed":
            phase("completed: migration fully applied")
    footer = ["", f"current state: {state}" + ("  [terminal]" if journal.is_terminal else "")]
    return "\n".join(header + events + footer) + "\n"
