"""Unit tests for the deterministic metrics registry."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    RATE_BUCKETS,
    MetricsRegistry,
)
from repro.obs.metrics import METRICS_FORMAT, METRICS_FORMAT_VERSION

REPO_SRC = Path(__file__).resolve().parent.parent.parent / "src"


def test_counter_families_and_labels():
    registry = MetricsRegistry()
    family = registry.counter("requests", "requests by verb", labels=("verb",))
    family.inc(verb="get")
    family.inc(2, verb="get")
    family.inc(verb="put")
    payload = family.to_payload()
    assert payload["kind"] == "counter"
    assert payload["labels"] == ["verb"]
    assert [(row["labels"], row["value"]) for row in payload["series"]] == [
        ({"verb": "get"}, 3),
        ({"verb": "put"}, 1),
    ]


def test_label_set_is_enforced():
    registry = MetricsRegistry()
    family = registry.counter("c", labels=("a", "b"))
    with pytest.raises(ValueError):
        family.inc(a="x")  # missing b
    with pytest.raises(ValueError):
        family.inc(a="x", b="y", c="z")  # extra label


def test_family_redeclaration_must_agree():
    registry = MetricsRegistry()
    first = registry.counter("c", labels=("a",))
    assert registry.counter("c", labels=("a",)) is first  # idempotent
    with pytest.raises(ValueError):
        registry.gauge("c", labels=("a",))  # kind mismatch
    with pytest.raises(ValueError):
        registry.counter("c", labels=("b",))  # label mismatch


def test_gauge_set_and_add():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth").labels()
    gauge.set(5)
    gauge.add(-2)
    assert gauge.value == 3


def test_histogram_quantiles_are_bucket_upper_bounds():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat", buckets=(1.0, 2.0, 4.0, 8.0)).labels()
    for value in (0.5, 1.5, 1.5, 3.0, 7.0):
        histogram.observe(value)
    # cumulative counts [1, 3, 4, 5]; ceil(0.5*5)=3 -> bucket <=2.0
    assert histogram.quantile(0.50) == 2.0
    assert histogram.quantile(0.95) == 8.0
    payload = histogram.to_payload()
    assert payload["count"] == 5
    assert payload["bucket_counts"] == [1, 2, 1, 1, 0]
    assert payload["min"] == 0.5 and payload["max"] == 7.0


def test_histogram_overflow_bucket_reports_exact_max():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat", buckets=(1.0, 2.0)).labels()
    histogram.observe(100.0)
    histogram.observe(250.0)
    assert histogram.quantile(0.99) == 250.0


def test_volatile_families_are_excluded_from_default_snapshot():
    registry = MetricsRegistry()
    registry.counter("steady").inc()
    registry.histogram("wall_seconds", volatile=True).observe(0.123)
    assert registry.family_names() == ["steady"]
    assert registry.family_names(include_volatile=True) == ["steady", "wall_seconds"]
    assert "wall_seconds" not in registry.snapshot()["families"]
    assert "wall_seconds" in registry.snapshot(include_volatile=True)["families"]


def test_snapshot_bytes_are_a_pure_function_of_observations():
    def drive(registry: MetricsRegistry) -> None:
        registry.counter("ops", "operations", labels=("kind",)).inc(kind="read")
        registry.counter("ops", "operations", labels=("kind",)).inc(3, kind="write")
        histogram = registry.histogram("lat", buckets=DEFAULT_BUCKETS)
        for value in (1, 17, 4096, 9999):
            histogram.observe(value)

    first, second = MetricsRegistry(), MetricsRegistry()
    drive(first)
    drive(second)
    assert first.dumps() == second.dumps()
    snapshot = first.snapshot()
    assert snapshot["format"] == METRICS_FORMAT
    assert snapshot["version"] == METRICS_FORMAT_VERSION
    # canonical form: trailing newline, sorted keys, plain JSON scalars
    text = first.dumps()
    assert text.endswith("\n")
    assert json.loads(text) == snapshot


def test_numpy_scalars_are_coerced_at_observation_time():
    numpy = pytest.importorskip("numpy")
    registry = MetricsRegistry()
    histogram = registry.histogram("lat", buckets=RATE_BUCKETS).labels()
    histogram.observe(numpy.float64(0.25))
    payload = histogram.to_payload()
    assert type(payload["sum"]) is float
    assert payload["sum"] == 0.25


def test_null_registry_is_inert_and_shared():
    assert NULL_REGISTRY.enabled is False
    family = NULL_REGISTRY.counter("anything", labels=("x",))
    assert family is NULL_REGISTRY.histogram("other")
    family.inc(x="whatever-label")  # label names are not even checked
    series = family.labels(bogus=1)
    series.inc()
    series.observe(5.0)
    assert series.value == 0
    assert NULL_REGISTRY.snapshot()["families"] == {}


_SNAPSHOT_SCRIPT = """
from repro.obs import Telemetry, use_telemetry
from repro.experiments.resilience import _run_scenario

with use_telemetry(Telemetry.create(seed=0)) as telemetry:
    _run_scenario(0, 1, 120, 200, 30)
    print(telemetry.metrics.dumps(), end="")
"""


def _snapshot_subprocess(backend: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    env["REPRO_ARRAY_BACKEND"] = backend
    env.pop("PYTHONHASHSEED", None)  # fresh salted hashing per process
    result = subprocess.run(
        [sys.executable, "-c", _SNAPSHOT_SCRIPT],
        capture_output=True,
        env=env,
        check=True,
    )
    return result.stdout


def test_snapshot_byte_identical_across_processes_and_backends():
    """Two fresh processes — one per array backend — export identical bytes."""
    try:
        import numpy  # noqa: F401

        backends = ("numpy", "list")
    except ImportError:
        backends = ("list", "list")
    first = _snapshot_subprocess(backends[0])
    second = _snapshot_subprocess(backends[1])
    assert first == second
    families = json.loads(first)["families"]
    assert "migration.state_transitions" in families
    assert "twopc.attempts" in families
