"""Tests for the `repro status` / `repro journal inspect` rendering."""

from __future__ import annotations

from repro.catalog.tuples import TupleId
from repro.obs.status import inspect_journal, render_pacer, render_status
from repro.online.controller import MigrationPacer, PacingOptions
from repro.online.migration import MigrationJournal, MigrationPlan, MigrationStep


def _journal(copies: int = 3, drops: int = 2) -> MigrationJournal:
    plan = MigrationPlan(4)
    plan.previous = [(TupleId("t", (i,)), frozenset({0})) for i in range(copies)]
    plan.changes = [(TupleId("t", (i,)), frozenset({1})) for i in range(copies)]
    plan.copies = [MigrationStep("copy", TupleId("t", (i,)), 0, 1) for i in range(copies)]
    plan.drops = [MigrationStep("drop", TupleId("t", (i,)), 0) for i in range(drops)]
    plan.tuples_changed = copies
    return MigrationJournal.for_plan(
        plan, kind="resize", flip_mode="delta",
        old_num_partitions=2, new_num_partitions=4,
    )


def test_render_status_forward_progress():
    journal = _journal()
    journal.state = "copying"
    journal.copies_done = 2
    journal.records = 5
    text = render_status(journal)
    assert "migration resize (2 -> 4 partitions, flip=delta)" in text
    assert "state: copying" in text
    assert "journal records: 5" in text
    assert "[x] planned" in text
    assert "[>] copying" in text and "2/3 copies" in text
    assert "[ ] completed" in text
    assert "pacer window" not in text  # no pacer at hand
    assert "rollback" not in text


def test_render_status_terminal_and_rollback_branch():
    journal = _journal()
    journal.state = "cancelling"
    journal.copies_done = 3
    journal.drops_done = 1
    journal.rollback_restored = 1
    text = render_status(journal)
    assert "rollback progress:" in text
    assert "1/1 replicas restored" in text
    assert "0/3 added replicas removed" in text
    journal.state = "cancelled"
    journal.rollback_removed = 3
    assert "[terminal]" in render_status(journal)


def test_render_status_with_session_duck_typing():
    class FakeSession:
        journal = _journal()
        ticks = 7
        steps_executed = 12
        pacer = None

    FakeSession.journal.state = "completed"
    FakeSession.journal.copies_done = 3
    FakeSession.journal.drops_done = 2
    FakeSession.journal.flip_done = True
    text = render_status(FakeSession())
    assert "session: 7 ticks, 12 steps executed" in text
    assert "[x] dropping" in text


def test_render_pacer_window():
    pacer = MigrationPacer(
        PacingOptions(abort_rate_budget=0.10, p99_latency_budget=100.0, min_samples=4)
    )
    for _ in range(8):
        pacer.record(10.0)
    pacer.plan_steps()
    lines = render_pacer(pacer)
    text = "\n".join(lines)
    assert "p99 latency   10  (budget 100)" in text
    assert "abort rate    0.000  (budget 0.100)" in text
    assert "samples       8 latency / 8 outcomes" in text
    assert "step budget   " in text and "not yet planned" not in text
    assert "paused        no" in text
    assert "1 proceed / 0 throttle / 0 pause / 0 resume" in text


def test_render_status_includes_pacer_when_given():
    journal = _journal()
    pacer = MigrationPacer(PacingOptions())
    text = render_status(journal, pacer=pacer)
    assert "pacer window:" in text
    assert "step budget   not yet planned" in text
    assert "(no budget)" in text  # both budgets unset


def test_inspect_journal_forward_timeline():
    journal = _journal()
    journal.state = "dropping"
    journal.copies_done = 3
    journal.drops_done = 1
    journal.flip_done = True
    journal.records = 9
    text = inspect_journal(journal)
    assert "journal: resize migration, 2 -> 4 partitions" in text
    assert "records persisted: 9" in text
    assert "1. planned: journal opened" in text
    assert "copying: dual-write window opened, 3/3 copies executed" in text
    assert "dual-window: every tuple dually resident" in text
    assert "flipped: routing updated" in text
    assert "dropping: 1/2 stale replicas dropped" in text
    assert text.rstrip().endswith("current state: dropping")


def test_inspect_journal_rollback_timeline():
    journal = _journal()
    journal.state = "cancelled"
    journal.copies_done = 3
    journal.drops_done = 0
    journal.rollback_restored = 0
    journal.rollback_removed = 3
    text = inspect_journal(journal)
    assert "cancelling: rollback branch taken" in text
    assert "rollback remove: 3/3 added replicas removed" in text
    assert "cancelled: placement restored" in text
    assert "flip-back" not in text  # flip never happened
