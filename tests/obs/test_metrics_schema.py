"""Tests for the minimal JSON-Schema validator and the checked-in schema."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry
from repro.obs.schema import SchemaError, iter_errors, validate

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
METRICS_SCHEMA = json.loads(
    (REPO_ROOT / "docs" / "metrics_schema.json").read_text(encoding="utf-8")
)


def test_type_const_enum_minimum():
    assert list(iter_errors(3, {"type": "integer", "minimum": 0})) == []
    assert list(iter_errors(-1, {"type": "integer", "minimum": 0}))
    assert list(iter_errors(True, {"type": "integer"}))  # bools are not ints
    assert list(iter_errors("x", {"const": "y"}))
    assert list(iter_errors("z", {"enum": ["a", "b"]}))
    assert list(iter_errors("a", {"enum": ["a", "b"]})) == []


def test_required_and_additional_properties():
    schema = {
        "type": "object",
        "required": ["a"],
        "properties": {"a": {"type": "integer"}},
        "additionalProperties": False,
    }
    assert list(iter_errors({"a": 1}, schema)) == []
    assert any("missing required" in msg for msg in iter_errors({}, schema))
    assert any("unexpected property" in msg for msg in iter_errors({"a": 1, "b": 2}, schema))


def test_items_and_ref():
    schema = {
        "type": "object",
        "properties": {"rows": {"type": "array", "items": {"$ref": "#/definitions/row"}}},
        "definitions": {"row": {"type": "integer", "minimum": 0}},
    }
    assert list(iter_errors({"rows": [0, 1, 2]}, schema)) == []
    errors = list(iter_errors({"rows": [0, -1, "x"]}, schema))
    assert len(errors) == 2
    assert "$.rows[1]" in errors[0]


def test_unresolvable_ref_raises():
    with pytest.raises(SchemaError):
        validate({}, {"$ref": "#/definitions/missing"})


def test_validate_raises_on_first_error_with_path():
    with pytest.raises(SchemaError, match=r"\$\.a"):
        validate({"a": "not-an-int"}, {"properties": {"a": {"type": "integer"}}})


def _full_registry() -> MetricsRegistry:
    """A registry carrying every family the checked-in schema requires."""
    registry = MetricsRegistry()
    for name in METRICS_SCHEMA["properties"]["families"]["required"]:
        if name in ("pacer.p99_latency", "pacer.abort_rate", "twopc.latency"):
            registry.histogram(name).observe(1.0)
        else:
            registry.counter(name, labels=("label",)).inc(label="x")
    return registry


def test_checked_in_schema_accepts_a_full_snapshot():
    validate(_full_registry().snapshot(), METRICS_SCHEMA)


def test_checked_in_schema_rejects_a_missing_family():
    snapshot = _full_registry().snapshot()
    del snapshot["families"]["migration.state_transitions"]
    errors = list(iter_errors(snapshot, METRICS_SCHEMA))
    assert any("migration.state_transitions" in msg for msg in errors)


def test_checked_in_schema_rejects_malformed_series():
    snapshot = _full_registry().snapshot()
    snapshot["families"]["twopc.attempts"]["series"][0]["surprise"] = 1
    with pytest.raises(SchemaError, match="surprise"):
        validate(snapshot, METRICS_SCHEMA)


def test_check_metrics_tool_partial_mode(tmp_path):
    """A partial snapshot (e.g. from `repro run`) fails strict mode but
    passes --partial, which keeps per-family structural validation."""
    import sys

    tools_dir = str(REPO_ROOT / "tools")
    if tools_dir not in sys.path:
        sys.path.insert(0, tools_dir)
    import check_metrics

    registry = MetricsRegistry()
    registry.counter("partition.runs", labels=("workload",)).inc(workload="x")
    snapshot_path = tmp_path / "partial.json"
    snapshot_path.write_text(registry.dumps(), encoding="utf-8")
    assert check_metrics.main([str(snapshot_path)]) == 1
    assert check_metrics.main(["--partial", str(snapshot_path)]) == 0

    # --partial still rejects structural damage in the exported families.
    snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
    snapshot["families"]["partition.runs"]["series"][0]["surprise"] = 1
    snapshot_path.write_text(json.dumps(snapshot), encoding="utf-8")
    assert check_metrics.main(["--partial", str(snapshot_path)]) == 1
