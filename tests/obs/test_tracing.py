"""Unit tests for the seeded span tracer, plus the chaos well-formedness check."""

from __future__ import annotations

import pytest

from repro.obs import NULL_TRACER, Telemetry, Tracer, use_telemetry


def test_spans_nest_with_parent_child_ids():
    tracer = Tracer(seed=0)
    with tracer.span("outer", k=4) as outer:
        assert tracer.current_span() is outer
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
            assert inner.depth == 1
            inner.set_attribute("moves", 3)
    assert tracer.current_span() is None
    payloads = tracer.finished_payload()
    assert [payload["name"] for payload in payloads] == ["outer", "inner"]
    outer_payload, inner_payload = payloads
    assert outer_payload["attributes"] == {"k": 4}
    assert inner_payload["attributes"] == {"moves": 3}
    assert outer_payload["sequence"] < inner_payload["sequence"]
    # deterministic payloads carry no wall-clock
    assert "duration" not in outer_payload


def test_span_ids_are_seed_deterministic():
    def ids(seed: int) -> list[str]:
        tracer = Tracer(seed=seed)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        return [span.span_id for span in tracer.finished_spans]

    assert ids(7) == ids(7)
    assert ids(7) != ids(8)


def test_exception_marks_span_as_error_and_unwinds():
    tracer = Tracer(seed=0)
    with pytest.raises(KeyError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise KeyError("boom")
    assert tracer.current_span() is None
    inner, outer = sorted(tracer.finished_spans, key=lambda span: span.depth, reverse=True)
    assert inner.status == "error"
    assert inner.attributes["error_type"] == "KeyError"
    assert outer.status == "error"
    tracer.check_well_formed()


def test_out_of_order_close_is_rejected():
    tracer = Tracer(seed=0)
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    outer.__enter__()
    inner.__enter__()
    with pytest.raises(RuntimeError):
        outer.__exit__(None, None, None)


def test_events_attach_to_the_current_span():
    tracer = Tracer(seed=0)
    with tracer.span("work") as span:
        tracer.event("checkpoint", record=3)
    assert span.events == [{"name": "checkpoint", "attributes": {"record": 3}}]
    tracer.event("free-standing")  # no open span: buffered, not lost
    tracer.check_well_formed()


def test_bounded_capacity_counts_drops():
    tracer = Tracer(seed=0, capacity=4)
    for index in range(10):
        with tracer.span(f"span-{index}"):
            pass
    assert len(tracer.finished_spans) == 4
    assert tracer.dropped_spans == 6
    tracer.check_well_formed()  # drops tolerated


def test_check_well_formed_rejects_broken_depth():
    tracer = Tracer(seed=0)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    inner = next(span for span in tracer.finished_spans if span.name == "inner")
    inner.depth = 5
    with pytest.raises(ValueError):
        tracer.check_well_formed()


def test_null_tracer_span_is_a_noop_context_manager():
    with NULL_TRACER.span("anything", k=1) as span:
        span.set_attribute("ignored", True)
        span.add_event("ignored")
    assert NULL_TRACER.finished_spans == []


def test_chaos_scenario_span_tree_is_well_formed():
    """The resilience scenario — coordinator kills included — closes cleanly.

    Two coordinator deaths unwind `migration.step` spans via exceptions, so
    this is the adversarial case for stack discipline: every span must still
    close inside its parent, with the killed steps marked ``status=error``.
    """
    from repro.experiments.resilience import _run_scenario

    with use_telemetry(Telemetry.create(seed=0)) as telemetry:
        report = _run_scenario(0, 1, 120, 200, 30)
    assert report.coordinator_deaths == 2
    tracer = telemetry.tracer
    assert tracer.open_spans == []
    tracer.check_well_formed()
    names = {span.name for span in tracer.finished_spans}
    assert {
        "experiment.resilience",
        "pipeline.partition",
        "partition.kway",
        "online.resize.plan",
        "migration.tick",
        "migration.step",
    } <= names
    killed = [
        span
        for span in tracer.finished_spans
        if span.name == "migration.step"
        and span.attributes.get("error_type") == "CoordinatorDeath"
    ]
    assert len(killed) == 2
    assert all(span.status == "error" for span in killed)
    transitions = [
        event
        for span in tracer.finished_spans
        for event in span.events
        if event["name"] == "migration.transition"
    ]
    assert any(
        event["attributes"]["to_state"] == "completed" for event in transitions
    )
