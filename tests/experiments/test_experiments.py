"""Tests for the experiment harness (scaled down to run quickly)."""

from repro.experiments import (
    FIGURE4_EXPERIMENTS,
    format_figure1,
    format_figure4,
    format_figure5,
    format_figure6,
    format_table1,
    run_figure1,
    run_figure4_experiment,
    run_figure5,
    run_figure6,
    run_table1,
)
from repro.experiments.figure4 import Figure4Experiment


def test_figure1_shape():
    rows = run_figure1(max_servers=5)
    assert len(rows) == 5
    # Single server: no distribution possible.
    assert rows[0].throughput_ratio == 1.0
    # With several servers distributed throughput is roughly half.
    for row in rows[1:]:
        assert 0.4 < row.throughput_ratio < 0.6
        assert row.distributed_latency_ms > row.single_partition_latency_ms
    assert "Figure 1" in format_figure1(rows)


def test_figure4_single_experiment_tpcc():
    experiment = next(e for e in FIGURE4_EXPERIMENTS if e.key == "tpcc-2w")
    row, result = run_figure4_experiment(experiment, scale=0.4, seed=1)
    assert row.partitions == 2
    assert row.hashing > row.schism_selected
    assert row.schism_range is not None
    assert row.manual is not None
    assert "tpcc-2w" in format_figure4([row])
    assert result.recommendation == row.recommendation


def test_figure4_random_falls_back_to_hashing():
    experiment = next(e for e in FIGURE4_EXPERIMENTS if e.key == "random")
    row, _result = run_figure4_experiment(experiment, scale=0.3, seed=0)
    assert row.recommendation in experiment.expected_recommendation


def test_figure4_experiment_definitions_cover_paper():
    keys = {experiment.key for experiment in FIGURE4_EXPERIMENTS}
    assert keys == {
        "ycsb-a",
        "ycsb-e",
        "tpcc-2w",
        "tpcc-2w-sampled",
        "tpcc-50w",
        "tpce",
        "epinions-2p",
        "epinions-10p",
        "random",
    }
    assert all(isinstance(e, Figure4Experiment) for e in FIGURE4_EXPERIMENTS)


def test_figure5_runtime_grows_with_graph_size():
    rows = run_figure5(
        partition_counts=(2, 8),
        graph_specs=(("small", 500, 2000), ("large", 2000, 10000)),
    )
    assert len(rows) == 4
    small = [row.seconds for row in rows if row.graph_name == "small"]
    large = [row.seconds for row in rows if row.graph_name == "large"]
    assert sum(large) > sum(small)
    assert "Figure 5" in format_figure5(rows)


def test_table1_reports_graph_sizes():
    rows = run_table1(scale=0.2)
    assert {row.dataset for row in rows} == {"epinions", "tpcc-50w", "tpce"}
    for row in rows:
        assert row.graph_nodes > 0
        assert row.graph_edges > 0
        assert row.graph_tuples <= row.database_tuples
    assert "Table 1" in format_table1(rows)


def test_figure6_scaling_shapes():
    fixed = run_figure6(machine_counts=(1, 2, 8), num_transactions=120)
    per_machine = run_figure6(
        machine_counts=(1, 2, 8), warehouses_per_machine=16, num_transactions=120
    )
    assert fixed[0].speedup == 1.0
    # The fixed-total configuration saturates well below linear at 8 machines...
    assert fixed[-1].speedup < 6.0
    # ...while growing the database with the cluster scales nearly linearly.
    assert per_machine[-1].speedup > 6.0
    assert per_machine[-1].speedup > fixed[-1].speedup
    assert "Figure 6" in format_figure6(fixed, per_machine)


def test_online_drift_adaptation_beats_full_repartition_on_cost():
    from repro.experiments import format_online_drift, run_online_drift

    report = run_online_drift(
        num_partitions=2,
        num_rows=600,
        transactions_per_phase=300,
        uniform_fraction=0.2,
        seed=0,
    )
    assert report.drift_detected
    assert report.distributed_before > report.distributed_budgeted
    # The budgeted adaptation approaches the full re-partition's quality at a
    # fraction of its migration volume.
    assert report.distributed_budgeted <= report.distributed_full + 0.10
    assert report.tuples_moved_budgeted < report.tuples_moved_full
    assert "budgeted" in format_online_drift(report)


def test_resilience_survives_faults_with_zero_loss():
    from repro.experiments import format_resilience, run_resilience

    report = run_resilience(
        seed=0,
        warehouses=1,
        training_transactions=120,
        live_transactions=200,
        migration_start=30,
    )
    # The acceptance criteria of the chaos scenario, all at once.
    assert report.violations == []
    assert report.final_partitions == 4
    assert report.coordinator_deaths == 2
    assert report.resumes == 2
    assert report.lost_updates == 0
    assert report.unreachable_tuples == 0
    assert report.tuple_conservation
    assert report.pacer_pauses + report.pacer_throttles > 0
    assert report.deterministic
    text = format_resilience(report)
    assert "PASS" in text and "lost updates" in text
