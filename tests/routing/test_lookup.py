"""Tests for lookup-table backends."""

import pytest

from repro.catalog.tuples import TupleId
from repro.graph.assignment import PartitionAssignment
from repro.routing.lookup import (
    BitArrayLookupTable,
    BloomFilterLookupTable,
    DictLookupTable,
    build_lookup_table,
)


@pytest.fixture
def assignment() -> PartitionAssignment:
    assignment = PartitionAssignment(4)
    for key in range(100):
        assignment.assign(TupleId("t", (key,)), {key % 4})
    assignment.assign(TupleId("t", (100,)), {0, 2})
    return assignment


@pytest.mark.parametrize("backend", ["dict", "bitarray", "bloom"])
def test_backends_resolve_known_tuples(assignment, backend):
    table = build_lookup_table(assignment, backend=backend)
    for key in range(100):
        placement = table.get(TupleId("t", (key,)))
        assert placement is not None
        assert key % 4 in placement
    replicated = table.get(TupleId("t", (100,)))
    assert replicated is not None and {0, 2} <= replicated


def test_dict_backend_exact(assignment):
    table = build_lookup_table(assignment, backend="dict")
    assert table.get(TupleId("t", (3,))) == {3}
    assert table.get(TupleId("t", (999,))) is None
    assert len(table) == 101


def test_bitarray_requires_integer_keys():
    table = BitArrayLookupTable(2)
    with pytest.raises(TypeError):
        table.put(TupleId("t", ("abc",)), frozenset({0}))
    # Non-integer lookups simply miss.
    assert table.get(TupleId("t", ("abc",))) is None


def test_bitarray_growth_and_unknown(assignment):
    table = BitArrayLookupTable(4, initial_capacity=8)
    table.put(TupleId("t", (1000,)), frozenset({3}))
    assert table.get(TupleId("t", (1000,))) == {3}
    assert table.get(TupleId("t", (999,))) is None


def test_bitarray_partition_limit():
    with pytest.raises(ValueError):
        BitArrayLookupTable(300)


def test_bloom_filter_no_false_negatives(assignment):
    table = build_lookup_table(assignment, backend="bloom", expected_items=200)
    for key in range(100):
        placement = table.get(TupleId("t", (key,)))
        assert key % 4 in placement


def test_bloom_filter_memory_smaller_than_dict(assignment):
    bloom = build_lookup_table(assignment, backend="bloom", expected_items=200)
    exact = build_lookup_table(assignment, backend="dict")
    assert bloom.memory_bytes() < exact.memory_bytes()


def test_unknown_backend(assignment):
    with pytest.raises(ValueError):
        build_lookup_table(assignment, backend="nope")


def test_memory_accounting(assignment):
    table = DictLookupTable(4).load(assignment)
    assert table.memory_bytes() > 0


# -- update paths (exercised by live migration) --------------------------------------
@pytest.mark.parametrize("backend", ["dict", "bitarray"])
def test_put_overwrites_single_partition(assignment, backend):
    table = build_lookup_table(assignment, backend=backend)
    tuple_id = TupleId("t", (7,))
    table.put(tuple_id, frozenset({1}))
    assert table.get(tuple_id) == {1}


@pytest.mark.parametrize("backend", ["dict", "bitarray"])
def test_put_narrows_replicated_to_single(assignment, backend):
    # A replicated tuple collapsing to one copy (migration dropped replicas)
    # must not keep answering the stale replica set.
    table = build_lookup_table(assignment, backend=backend)
    replicated = TupleId("t", (100,))
    assert table.get(replicated) == {0, 2}
    table.put(replicated, frozenset({2}))
    assert table.get(replicated) == {2}


def test_bitarray_single_to_replicated_roundtrip():
    table = BitArrayLookupTable(4)
    tuple_id = TupleId("t", (5,))
    table.put(tuple_id, frozenset({1}))
    table.put(tuple_id, frozenset({1, 3}))
    assert table.get(tuple_id) == {1, 3}
    table.put(tuple_id, frozenset({3}))
    assert table.get(tuple_id) == {3}


@pytest.mark.parametrize("backend", ["dict", "bitarray"])
def test_apply_delta_bulk_updates(assignment, backend):
    table = build_lookup_table(assignment, backend=backend)
    changes = [
        (TupleId("t", (0,)), frozenset({3})),
        (TupleId("t", (1,)), frozenset({0, 1})),
    ]
    assert table.apply_delta(changes) == 2
    assert table.get(TupleId("t", (0,))) == {3}
    assert table.get(TupleId("t", (1,))) == {0, 1}
    # Untouched entries keep their placement.
    assert table.get(TupleId("t", (2,))) == {2}


def test_bloom_rejects_in_place_updates(assignment):
    bloom = build_lookup_table(assignment, backend="bloom", expected_items=200)
    assert not bloom.supports_update()
    with pytest.raises(ValueError):
        bloom.apply_delta([(TupleId("t", (0,)), frozenset({1}))])
