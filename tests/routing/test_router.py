"""Tests for the statement router."""

from repro.catalog.tuples import TupleId
from repro.core.strategies import (
    CompositePartitioning,
    FullReplication,
    LookupTablePartitioning,
    range_on,
    replicate,
)
from repro.graph.assignment import PartitionAssignment
from repro.routing.lookup import DictLookupTable
from repro.routing.router import Router, TransactionRoutingContext
from repro.sqlparse.ast import InsertStatement, SelectStatement, UpdateStatement, eq, in_list
from repro.workload.trace import Transaction


def range_strategy(k=2):
    return CompositePartitioning(
        k,
        {"account": range_on("id", [49]), "item": replicate()},
    )


def test_routed_select_single_partition(bank_schema):
    router = Router(range_strategy(), schema=bank_schema)
    decision = router.route_statement(SelectStatement(("account",), where=eq("id", 10)))
    assert decision.partitions == {0}
    assert decision.is_single_partition
    assert not decision.broadcast


def test_unroutable_select_broadcasts(bank_schema):
    router = Router(range_strategy(), schema=bank_schema)
    decision = router.route_statement(SelectStatement(("account",), where=eq("name", "carlo")))
    assert decision.broadcast
    assert decision.partitions == {0, 1}


def test_insert_routed_by_values(bank_schema):
    router = Router(range_strategy(), schema=bank_schema)
    decision = router.route_statement(
        InsertStatement("account", {"id": 80, "name": "x", "bal": 0})
    )
    assert decision.partitions == {1}


def test_replicated_read_prefers_touched_partition(bank_schema):
    strategy = CompositePartitioning(3, {"account": replicate()})
    router = Router(strategy, schema=bank_schema)
    context = TransactionRoutingContext()
    context.touched_partitions.add(2)
    decision = router.route_statement(
        SelectStatement(("account",), where=eq("id", 1)), context
    )
    assert decision.partitions == {2}


def test_replicated_write_goes_everywhere(bank_schema):
    strategy = FullReplication(3)
    router = Router(strategy, schema=bank_schema)
    decision = router.route_statement(
        UpdateStatement("account", {"bal": 1}, where=eq("id", 1))
    )
    assert decision.partitions == {0, 1, 2}


def test_lookup_table_routing(bank_schema):
    assignment = PartitionAssignment(2)
    assignment.assign(TupleId("account", (1,)), {1})
    assignment.assign(TupleId("account", (2,)), {0})
    strategy = LookupTablePartitioning(2, assignment, default_policy="hash")
    lookup = DictLookupTable(2).load(assignment)
    router = Router(strategy, schema=bank_schema, lookup_table=lookup)
    decision = router.route_statement(SelectStatement(("account",), where=eq("id", 1)))
    assert decision.partitions == {1}
    decision = router.route_statement(SelectStatement(("account",), where=in_list("id", [1, 2])))
    assert decision.partitions == {0, 1}


def test_route_transaction_accumulates_participants(bank_schema):
    router = Router(range_strategy(), schema=bank_schema)
    transaction = Transaction(
        (
            SelectStatement(("account",), where=eq("id", 10)),
            SelectStatement(("account",), where=eq("id", 80)),
        )
    )
    participants = router.transaction_participants(transaction)
    assert participants == {0, 1}
    decisions = router.route_transaction(transaction)
    assert len(decisions) == 2


# -- dual-write migration window -----------------------------------------------------
def _lookup_router(bank_schema, k=4, placements=None):
    assignment = PartitionAssignment(k)
    for key, partitions in (placements or {1: {0}, 2: {1}}).items():
        assignment.assign(TupleId("account", (key,)), set(partitions))
    table = DictLookupTable(k)
    for tuple_id in assignment:
        table.put(tuple_id, assignment.partitions_of(tuple_id))
    strategy = LookupTablePartitioning(k, assignment, "hash")
    return Router(strategy, schema=bank_schema, lookup_table=table)


def test_window_widens_writes_but_not_reads(bank_schema):
    router = _lookup_router(bank_schema)
    tuple_id = TupleId("account", (1,))
    router.migration_window.open([(tuple_id, {2})])
    write = router.route_statement(
        UpdateStatement("account", {"bal": ("delta", 1)}, where=eq("id", 1))
    )
    # The write reaches the copy destination as well as the source replica.
    assert write.partitions == {0, 2}
    read = router.route_statement(SelectStatement(("account",), where=eq("id", 1)))
    # Reads keep preferring the source until the routing flip.
    assert read.partitions == {0}


def test_window_only_affects_in_flight_tuples(bank_schema):
    router = _lookup_router(bank_schema)
    router.migration_window.open([(TupleId("account", (1,)), {2})])
    other = router.route_statement(
        UpdateStatement("account", {"bal": ("delta", 1)}, where=eq("id", 2))
    )
    assert other.partitions == {1}


def test_window_close_restores_plain_routing(bank_schema):
    router = _lookup_router(bank_schema)
    tuple_id = TupleId("account", (1,))
    router.migration_window.open([(tuple_id, {2})])
    assert router.migration_window
    router.migration_window.close()
    assert not router.migration_window
    write = router.route_statement(
        UpdateStatement("account", {"bal": ("delta", 1)}, where=eq("id", 1))
    )
    assert write.partitions == {0}


def test_window_empty_extras_are_dropped(bank_schema):
    router = _lookup_router(bank_schema)
    router.migration_window.open([(TupleId("account", (1,)), frozenset())])
    # An unchanged tuple contributes no entry — the window stays closed.
    assert not router.migration_window
    assert len(router.migration_window) == 0
