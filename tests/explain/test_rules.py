"""Tests for predicate rules and rule sets."""

import pytest

from repro.explain.rules import (
    PredicateRule,
    RuleCondition,
    RuleSet,
    decode_label,
    simplify_rules,
)


def test_condition_matching_operators():
    row = {"w_id": 3, "name": "x"}
    assert RuleCondition("w_id", "<=", 5).matches(row)
    assert not RuleCondition("w_id", ">", 5).matches(row)
    assert RuleCondition("w_id", "=", 3).matches(row)
    assert RuleCondition("w_id", "=", 3.0).matches(row)
    assert RuleCondition("name", "=", "x").matches(row)
    assert RuleCondition("name", "<>", "y").matches(row)
    assert not RuleCondition("missing", "=", 1).matches(row)


def test_invalid_operator_rejected():
    with pytest.raises(ValueError):
        RuleCondition("a", "LIKE", 1)


def test_decode_label():
    assert decode_label("3") == frozenset({3})
    assert decode_label("R0_2") == frozenset({0, 2})
    assert decode_label("R1") == frozenset({1})


def test_rule_matching_and_partitions():
    rule = PredicateRule(
        (RuleCondition("w_id", ">", 1), RuleCondition("w_id", "<=", 5)), "2", 10, 0.0
    )
    assert rule.matches({"w_id": 3})
    assert not rule.matches({"w_id": 1})
    assert rule.partitions() == frozenset({2})


def test_rule_set_classification_and_default():
    rules = (
        PredicateRule((RuleCondition("w_id", "<=", 1),), "1", 5, 0.0),
        PredicateRule((RuleCondition("w_id", ">", 1),), "0", 5, 0.0),
    )
    rule_set = RuleSet("stock", rules, default_label="0", attributes=("w_id",))
    assert rule_set.classify({"w_id": 1}) == "1"
    assert rule_set.classify({"w_id": 2}) == "0"
    assert rule_set.classify({}) == "0"
    assert rule_set.partitions_for_row({"w_id": 1}) == frozenset({1})
    assert not rule_set.is_trivial


def test_trivial_rule_set():
    rule_set = RuleSet("item", (PredicateRule((), "R0_1", 10, 0.0),), default_label="R0_1")
    assert rule_set.is_trivial
    assert rule_set.partitions_for_row({"anything": 1}) == frozenset({0, 1})


def test_simplify_rules_merges_bounds():
    rule = PredicateRule(
        (
            RuleCondition("k", "<=", 100),
            RuleCondition("k", "<=", 50),
            RuleCondition("k", ">", 10),
            RuleCondition("k", ">", 20),
            RuleCondition("region", "=", "eu"),
            RuleCondition("region", "=", "eu"),
        ),
        "1",
        4,
        0.0,
    )
    simplified = simplify_rules([rule])[0]
    operators = sorted((c.attribute, c.operator, c.value) for c in simplified.conditions)
    assert ("k", "<=", 50) in operators
    assert ("k", ">", 20) in operators
    assert len([c for c in simplified.conditions if c.attribute == "region"]) == 1
    assert len(simplified.conditions) == 3


def test_describe_mentions_rules():
    rule_set = RuleSet(
        "stock",
        (PredicateRule((RuleCondition("s_w_id", "<=", 1),), "1", 3, 0.015),),
        default_label="0",
        attributes=("s_w_id",),
    )
    text = rule_set.describe()
    assert "stock" in text and "s_w_id <= 1" in text and "otherwise" in text
