"""Tests for the C4.5-style decision tree."""

import pytest

from repro.explain.dataset import LabeledSample
from repro.explain.decision_tree import DecisionTree, DecisionTreeOptions


def warehouse_samples(per_class: int = 50) -> list[LabeledSample]:
    """TPC-C style: partition label determined by the warehouse id."""
    samples = []
    for index in range(per_class):
        samples.append(LabeledSample({"w_id": 1, "i_id": index}, "1"))
        samples.append(LabeledSample({"w_id": 2, "i_id": index}, "0"))
    return samples


def test_learns_threshold_split():
    tree = DecisionTree().fit(warehouse_samples(), ["w_id", "i_id"])
    assert tree.predict({"w_id": 1, "i_id": 7}) == "1"
    assert tree.predict({"w_id": 2, "i_id": 7}) == "0"
    assert tree.accuracy(warehouse_samples()) == 1.0
    assert tree.depth == 1


def test_irrelevant_attribute_not_used():
    tree = DecisionTree().fit(warehouse_samples(), ["w_id", "i_id"])
    rules = tree.rules()
    used = {condition.attribute for rule in rules for condition in rule.conditions}
    assert used == {"w_id"}


def test_pure_dataset_single_leaf():
    samples = [LabeledSample({"x": i}, "7") for i in range(20)]
    tree = DecisionTree().fit(samples, ["x"])
    assert tree.leaf_count == 1
    assert tree.predict({"x": 100}) == "7"


def test_empty_dataset_rejected():
    with pytest.raises(ValueError):
        DecisionTree().fit([], ["x"])


def test_categorical_split():
    samples = [LabeledSample({"region": "eu"}, "0") for _ in range(20)]
    samples += [LabeledSample({"region": "us"}, "1") for _ in range(20)]
    tree = DecisionTree().fit(samples, ["region"])
    assert tree.predict({"region": "eu"}) == "0"
    assert tree.predict({"region": "us"}) == "1"


def test_range_labels_multiway():
    samples = []
    for value in range(300):
        label = str(value // 100)
        samples.append(LabeledSample({"key": value}, label))
    tree = DecisionTree().fit(samples, ["key"])
    assert tree.predict({"key": 50}) == "0"
    assert tree.predict({"key": 150}) == "1"
    assert tree.predict({"key": 250}) == "2"


def test_missing_attribute_follows_heavier_branch():
    tree = DecisionTree().fit(warehouse_samples(), ["w_id"])
    # No attribute at all: prediction still returns a known label.
    assert tree.predict({}) in {"0", "1"}


def test_pruning_collapses_noise():
    samples = []
    for index in range(200):
        label = "0" if index % 2 == 0 else "1"  # label independent of x
        samples.append(LabeledSample({"x": index % 7}, label))
    pruned = DecisionTree(DecisionTreeOptions(prune=True)).fit(samples, ["x"])
    unpruned = DecisionTree(DecisionTreeOptions(prune=False, min_gain_ratio=0.0)).fit(samples, ["x"])
    assert pruned.leaf_count <= unpruned.leaf_count


def test_max_depth_respected():
    samples = [LabeledSample({"x": i}, str(i % 4)) for i in range(64)]
    tree = DecisionTree(DecisionTreeOptions(max_depth=2, prune=False)).fit(samples, ["x"])
    assert tree.depth <= 2


def test_rules_have_support_and_error():
    tree = DecisionTree().fit(warehouse_samples(10), ["w_id"])
    for rule in tree.rules():
        assert rule.support > 0
        assert 0.0 <= rule.error_rate <= 1.0


def test_to_text_mentions_partitions():
    tree = DecisionTree().fit(warehouse_samples(10), ["w_id"])
    text = tree.to_text()
    assert "partition" in text
    assert "w_id" in text
