"""Tests for correlation-based feature selection."""

from repro.explain.dataset import LabeledSample
from repro.explain.feature_selection import select_attributes, symmetrical_uncertainty
from repro.utils.rng import SeededRng


def tpcc_stock_samples(count: int = 200) -> list[LabeledSample]:
    """s_w_id determines the partition; s_i_id is uncorrelated noise."""
    rng = SeededRng(0)
    samples = []
    for _ in range(count):
        warehouse = rng.randint(1, 2)
        samples.append(
            LabeledSample(
                {"s_w_id": warehouse, "s_i_id": rng.randint(1, 1000)},
                str(warehouse - 1),
            )
        )
    return samples


def test_su_high_for_predictive_attribute():
    samples = tpcc_stock_samples()
    su_warehouse = symmetrical_uncertainty(samples, "s_w_id")
    su_item = symmetrical_uncertainty(samples, "s_i_id")
    assert su_warehouse > 0.9
    assert su_item < 0.3
    assert su_warehouse > su_item


def test_su_between_attributes():
    samples = tpcc_stock_samples()
    self_su = symmetrical_uncertainty(samples, "s_w_id", "s_w_id")
    cross_su = symmetrical_uncertainty(samples, "s_w_id", "s_i_id")
    assert self_su > cross_su


def test_select_attributes_discards_noise():
    samples = tpcc_stock_samples()
    selected = select_attributes(samples, ["s_i_id", "s_w_id"])
    assert selected == ["s_w_id"]


def test_select_attributes_keeps_complementary_attributes():
    rng = SeededRng(1)
    samples = []
    for _ in range(300):
        a = rng.randint(0, 1)
        b = rng.randint(0, 1)
        samples.append(LabeledSample({"a": a, "b": b}, str(a * 2 + b)))
    selected = select_attributes(samples, ["a", "b"])
    assert set(selected) == {"a", "b"}


def test_select_attributes_empty_for_uninformative_data():
    rng = SeededRng(2)
    samples = [
        LabeledSample({"x": rng.randint(0, 1000)}, str(rng.randint(0, 1)))
        for _ in range(300)
    ]
    selected = select_attributes(samples, ["x"], min_class_correlation=0.05)
    assert selected == []


def test_empty_samples():
    assert select_attributes([], ["a"]) == []
