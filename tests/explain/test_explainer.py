"""Tests for the explanation phase orchestrator."""

from repro.catalog.tuples import TupleId
from repro.explain.crossval import cross_validate
from repro.explain.dataset import LabeledSample, build_training_sets
from repro.explain.explainer import Explainer, ExplainerOptions
from repro.graph.assignment import PartitionAssignment
from repro.sqlparse.ast import SelectStatement, eq
from repro.workload.trace import Workload


def warehouse_assignment(database) -> PartitionAssignment:
    """Label every account by balance: cheap accounts on 0, expensive on 1."""
    assignment = PartitionAssignment(2)
    for tuple_id in database.all_tuple_ids("account"):
        row = database.get_row(tuple_id)
        assignment.assign(tuple_id, {0 if row["bal"] < 70_000 else 1})
    return assignment


def id_workload() -> Workload:
    workload = Workload("w")
    for account_id in range(1, 6):
        workload.add_statements([SelectStatement(("account",), where=eq("id", account_id))])
        workload.add_statements([SelectStatement(("account",), where=eq("bal", account_id))])
    return workload


def test_build_training_sets(bank_database):
    assignment = warehouse_assignment(bank_database)
    datasets = build_training_sets(assignment, bank_database, {"account": ("id", "bal")})
    assert "account" in datasets
    dataset = datasets["account"]
    assert len(dataset) == 5
    assert set(dataset.labels) == {"0", "1"}


def test_build_training_sets_respects_cap(bank_database):
    assignment = warehouse_assignment(bank_database)
    datasets = build_training_sets(
        assignment, bank_database, {"account": ("id",)}, max_samples_per_table=2
    )
    assert len(datasets["account"]) == 2


def test_explainer_produces_rules_on_bank(bank_database):
    assignment = warehouse_assignment(bank_database)
    explanation = Explainer(ExplainerOptions(min_attribute_frequency=0.05)).explain(
        assignment, bank_database, id_workload()
    )
    assert "account" in explanation.tables
    table_explanation = explanation.tables["account"]
    assert table_explanation.training_samples == 5
    # The balance attribute separates the two partitions perfectly.
    rule_set = table_explanation.rule_set
    assert rule_set.partitions_for_row({"bal": 10_000, "id": 5}) == frozenset({0})
    assert rule_set.partitions_for_row({"bal": 120_000, "id": 3}) == frozenset({1})
    assert "account" in explanation.describe()


def test_explainer_trivial_table(bank_database):
    assignment = PartitionAssignment(2)
    for tuple_id in bank_database.all_tuple_ids("account"):
        assignment.assign(tuple_id, {0, 1})
    explanation = Explainer(ExplainerOptions(min_attribute_frequency=0.05)).explain(
        assignment, bank_database, id_workload()
    )
    rule_set = explanation.tables["account"].rule_set
    assert rule_set.is_trivial
    assert rule_set.partitions_for_row({"id": 1}) == frozenset({0, 1})


def test_cross_validate_reasonable_accuracy():
    samples = [LabeledSample({"x": i}, "0" if i < 50 else "1") for i in range(100)]
    accuracy = cross_validate(samples, ["x"], folds=5)
    assert accuracy > 0.9


def test_cross_validate_small_dataset_falls_back():
    samples = [LabeledSample({"x": i}, str(i % 2)) for i in range(4)]
    accuracy = cross_validate(samples, ["x"], folds=5)
    assert 0.0 <= accuracy <= 1.0
