"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.catalog.schema import Schema, Table, integer_column, string_column
from repro.engine.database import Database
from repro.sqlparse.ast import ColumnRef, Comparison, SelectStatement, UpdateStatement, eq
from repro.workload.trace import Workload
from repro.workloads import TpccConfig, generate_tpcc


@pytest.fixture
def bank_schema() -> Schema:
    """A one-table bank schema mirroring the paper's running example."""
    return Schema(
        "bank",
        [
            Table(
                "account",
                [integer_column("id"), string_column("name"), integer_column("bal")],
                primary_key=["id"],
            )
        ],
    )


@pytest.fixture
def bank_database(bank_schema: Schema) -> Database:
    """The five-account database from Figure 2 of the paper."""
    database = Database(bank_schema)
    rows = [
        (1, "carlo", 80_000),
        (2, "evan", 60_000),
        (3, "sam", 129_000),
        (4, "eugene", 29_000),
        (5, "yang", 12_000),
    ]
    for account_id, name, balance in rows:
        database.insert_row("account", {"id": account_id, "name": name, "bal": balance})
    return database


@pytest.fixture
def bank_workload() -> Workload:
    """The four transactions of Figure 2."""
    workload = Workload("bank")
    workload.add_statements(
        [
            UpdateStatement("account", {"bal": ("delta", -1000)}, where=eq("name", "carlo")),
            UpdateStatement("account", {"bal": ("delta", 1000)}, where=eq("name", "evan")),
        ],
        kind="transfer",
    )
    workload.add_statements(
        [SelectStatement(("account",), where=eq("id", 1)), SelectStatement(("account",), where=eq("id", 3))],
        kind="read-pair",
    )
    workload.add_statements(
        [
            UpdateStatement("account", {"bal": 60_000}, where=eq("id", 2)),
            SelectStatement(("account",), where=eq("id", 5)),
        ],
        kind="mixed",
    )
    workload.add_statements(
        [
            UpdateStatement(
                "account",
                {"bal": ("delta", 1000)},
                where=Comparison(ColumnRef("bal"), "<", 100_000),
            )
        ],
        kind="bulk",
    )
    return workload


@pytest.fixture
def tiny_tpcc():
    """A small TPC-C bundle (fresh per test: extraction mutates the database)."""
    config = TpccConfig(
        warehouses=2,
        districts_per_warehouse=3,
        customers_per_district=10,
        items=50,
    )
    return generate_tpcc(config, num_transactions=300)
