"""End-to-end integration tests across the whole library."""

from repro import Schism, SchismOptions, evaluate_strategy, split_workload
from repro.distributed import Cluster, TwoPhaseCommitCoordinator
from repro.routing import Router, build_lookup_table
from repro.workloads import EpinionsConfig, generate_epinions


def test_tpcc_pipeline_matches_manual_partitioning(tiny_tpcc):
    train, test = split_workload(tiny_tpcc.workload, 0.7)
    options = SchismOptions(num_partitions=2)
    result = Schism(options).run(tiny_tpcc.database, train, test)
    manual = evaluate_strategy(
        tiny_tpcc.manual_strategy(2), result.test_trace, tiny_tpcc.database
    )
    schism_fraction = result.reports["range-predicates"].distributed_fraction
    # Schism's derived range predicates should be within a few points of the
    # expert by-warehouse partitioning, and far better than hashing.
    assert schism_fraction <= manual.distributed_fraction + 0.10
    assert result.reports["hashing"].distributed_fraction > 0.5
    # The explanation should replicate the item table and split on a warehouse column.
    item_rules = result.explanation.tables["item"].rule_set
    assert item_rules.is_trivial
    stock_attributes = result.explanation.tables["stock"].selected_attributes
    assert stock_attributes == ("s_w_id",)


def test_epinions_lookup_beats_manual_and_survives_routing():
    bundle = generate_epinions(
        EpinionsConfig(num_users=200, num_items=200, num_communities=8), num_transactions=1500
    )
    train, test = split_workload(bundle.workload, 0.7)
    result = Schism(SchismOptions(num_partitions=2)).run(bundle.database, train, test)
    manual = evaluate_strategy(bundle.manual_strategy(2), result.test_trace, bundle.database)
    lookup_fraction = result.reports["lookup-table"].distributed_fraction
    assert lookup_fraction < manual.distributed_fraction
    # The fine-grained solutions win; at this small scale the validation may
    # pick either the lookup table or a range explanation of it.
    assert result.recommendation in ("lookup-table", "range-predicates")
    assert result.distributed_fraction() <= manual.distributed_fraction + 0.05

    # The assignment can be served by every lookup-table backend.
    for backend in ("dict", "bloom"):
        table = build_lookup_table(result.assignment, backend=backend)
        assert table.memory_bytes() > 0

    # Materialise the cluster and execute part of the test workload through
    # the router + 2PC coordinator; the measured distributed fraction should
    # be in the same ballpark as the cost model's estimate.
    fresh = generate_epinions(
        EpinionsConfig(num_users=200, num_items=200, num_communities=8), num_transactions=200,
        name="epinions-online",
    )
    cluster = Cluster.from_database(fresh.database, result.recommended_strategy)
    coordinator = TwoPhaseCommitCoordinator(
        cluster, Router(result.recommended_strategy, fresh.database.schema)
    )
    coordinator.execute_workload(fresh.workload)
    assert coordinator.statistics.transactions == len(fresh.workload)
    # Statement-level routing over a per-tuple lookup table keyed by primary
    # keys must broadcast Epinions' secondary-attribute queries, so it pays
    # 2PC on most transactions; the tuple-level cost model above is the
    # partitioning-quality metric.  Here we only check the plumbing: every
    # transaction executed and was accounted for.
    assert coordinator.statistics.total_messages > 0
    assert cluster.total_rows() >= fresh.database.row_count()
