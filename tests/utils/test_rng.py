"""Tests for the seeded RNG and Zipfian generators."""

from collections import Counter

import pytest

from repro.utils.rng import (
    ScrambledZipfianGenerator,
    SeededRng,
    ZipfianGenerator,
    weighted_choice,
    zipf_pmf,
)
from repro.utils.timer import Timer


def test_seeded_rng_deterministic():
    first = SeededRng(42)
    second = SeededRng(42)
    assert [first.randint(0, 100) for _ in range(10)] == [second.randint(0, 100) for _ in range(10)]


def test_fork_independent_of_draw_order():
    parent_a = SeededRng(7)
    parent_b = SeededRng(7)
    parent_b.random()  # consume one draw
    assert parent_a.fork("x").randint(0, 1_000_000) == parent_b.fork("x").randint(0, 1_000_000)


def test_bernoulli_bounds():
    rng = SeededRng(0)
    draws = [rng.bernoulli(0.2) for _ in range(2000)]
    assert 0.1 < sum(draws) / len(draws) < 0.3


def test_zipfian_values_in_range_and_skewed():
    generator = ZipfianGenerator(1000, theta=0.99, rng=SeededRng(1))
    values = [generator.next_value() for _ in range(5000)]
    assert all(0 <= value < 1000 for value in values)
    counts = Counter(values)
    assert counts[0] > counts.get(500, 0)


def test_zipfian_invalid_parameters():
    with pytest.raises(ValueError):
        ZipfianGenerator(0)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, theta=1.5)


def test_scrambled_zipfian_spreads_hot_keys():
    generator = ScrambledZipfianGenerator(1000, rng=SeededRng(2))
    values = [generator.next_value() for _ in range(5000)]
    assert all(0 <= value < 1000 for value in values)
    hot = Counter(values).most_common(5)
    # Scrambling should not leave all hot keys at the start of the key space.
    assert any(key > 100 for key, _count in hot)


def test_weighted_choice_distribution():
    rng = SeededRng(3)
    draws = Counter(
        weighted_choice(rng, [("a", 0.9), ("b", 0.1)]) for _ in range(2000)
    )
    assert draws["a"] > draws["b"] * 3


def test_weighted_choice_requires_positive_weights():
    with pytest.raises(ValueError):
        weighted_choice(SeededRng(0), [("a", 0.0)])


def test_zipf_pmf_sums_to_one():
    pmf = zipf_pmf(50, 0.9)
    assert abs(sum(pmf) - 1.0) < 1e-9
    assert pmf[0] > pmf[-1]


def test_timer_measures_elapsed():
    with Timer() as timer:
        sum(range(1000))
    assert timer.elapsed >= 0.0
    timer.start()
    assert timer.stop() >= 0.0
