"""The streaming canonical writer must match sort-key ``json.dumps`` exactly."""

from __future__ import annotations

import io
import json

import pytest

from repro.utils.canonical_json import dumps_canonical, write_canonical

CASES = [
    None,
    True,
    False,
    0,
    -17,
    10**30,
    1.5,
    -0.0,
    1e-300,
    "",
    "plain",
    "quotes \" and \\ backslash",
    "newline\nand\ttab",
    "café ünïcode 漢字  ",
    [],
    {},
    [1, 2, 3],
    [[], [[]], [{}, {"a": []}]],
    {"a": 1, "b": 2},
    {"b": 2, "a": 1},  # key order must not matter
    {"outer": {"inner": [1, {"deep": None}]}, "z": "last", "A": "caps first"},
    {"mixed": [1, "two", 3.0, None, True, {"k": [False]}]},
    # plan-shaped payload: rows of [table, key-list, partition-list].
    {
        "placements": [
            ["account", [5], [0, 1]],
            ["account", [17], [3]],
            ["order_line", [1, 2, 3, 4], [2]],
        ],
        "version": 1,
    },
]


@pytest.mark.parametrize("payload", CASES)
def test_dumps_matches_stdlib_bytes(payload):
    assert dumps_canonical(payload) == json.dumps(payload, sort_keys=True, indent=1)


@pytest.mark.parametrize("payload", CASES)
def test_write_streams_identical_bytes(payload):
    buffer = io.StringIO()
    write_canonical(payload, buffer)
    assert buffer.getvalue() == dumps_canonical(payload)


def test_small_chunk_size_streams_identically():
    payload = {"rows": [[i, str(i), [i, i + 1]] for i in range(200)]}
    buffer = io.StringIO()
    write_canonical(payload, buffer, chunk_size=7)
    assert buffer.getvalue() == json.dumps(payload, sort_keys=True, indent=1)


def test_tuples_serialise_as_lists():
    assert dumps_canonical((1, (2, 3))) == json.dumps([1, [2, 3]], indent=1)


def test_non_finite_floats_match_stdlib():
    payload = [float("inf"), float("-inf")]
    assert dumps_canonical(payload) == json.dumps(payload, sort_keys=True, indent=1)


def test_round_trips_through_loads():
    payload = {"a": [1, 2.5, None, "s"], "b": {"c": True}}
    assert json.loads(dumps_canonical(payload)) == payload
