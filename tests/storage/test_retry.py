"""Retry/timeout/backoff policy in isolation (no worker processes).

The contract under test: schedules are a pure function of ``(seed, key)``
— byte-identical across instances, reruns, and array backends — the budget
is bounded, the cap binds, and fatal errors never consume it.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.storage.retry import (
    FATAL,
    RETRYABLE,
    RetryBudgetExhausted,
    RetryOptions,
    RetryPolicy,
    classify_error,
)
from repro.storage.sqlite_store import StoreConstraintError
from repro.storage.worker import RemoteStoreError, WorkerTimeout, WorkerUnavailable


# -- options hygiene (mirrors PartitionerOptions clamping) --------------------------


def test_options_clamp_count_and_duration_knobs():
    options = RetryOptions(
        timeout_ms=0.0,
        max_retries=-3,
        backoff_base_ms=-10.0,
        backoff_multiplier=0.5,
        backoff_cap_ms=-1.0,
    )
    assert options.timeout_ms == 1.0
    assert options.max_retries == 0
    assert options.backoff_base_ms == 0.0
    assert options.backoff_multiplier == 1.0
    # the cap can never fall below the base.
    assert options.backoff_cap_ms == options.backoff_base_ms


def test_options_cap_clamped_to_base():
    options = RetryOptions(backoff_base_ms=200.0, backoff_cap_ms=50.0)
    assert options.backoff_cap_ms == 200.0


@pytest.mark.parametrize("jitter", [-0.1, 1.5])
def test_options_reject_out_of_range_jitter(jitter):
    with pytest.raises(ValueError):
        RetryOptions(jitter=jitter)


def test_timeout_s_converts_milliseconds():
    assert RetryOptions(timeout_ms=250.0).timeout_s == 0.25


# -- schedule determinism -----------------------------------------------------------


def test_schedule_is_pure_function_of_seed_and_key():
    options = RetryOptions(max_retries=5)
    first = RetryPolicy(options, seed=7).schedule_for(("apply", 3))
    second = RetryPolicy(options, seed=7).schedule_for(("apply", 3))
    assert first == second
    # a different key draws from an independent sub-stream...
    assert RetryPolicy(options, seed=7).schedule_for(("apply", 4)) != first
    # ...and so does a different seed.
    assert RetryPolicy(options, seed=8).schedule_for(("apply", 3)) != first


def test_schedule_unaffected_by_prior_draws():
    """Interleaving other operations' schedules must not shift this key's."""
    options = RetryOptions(max_retries=4)
    policy = RetryPolicy(options, seed=0)
    baseline = policy.schedule_for(("apply", ("txn-1", 0)))
    for other in range(10):
        policy.schedule_for(("read", other))
    assert policy.schedule_for(("apply", ("txn-1", 0))) == baseline


_SCHEDULE_SNIPPET = """
from repro.storage.retry import RetryOptions, RetryPolicy
policy = RetryPolicy(RetryOptions(max_retries=6), seed=3)
print(repr(policy.schedule_for(("apply", ("txn-9", 2)))))
"""


def _schedule_via_subprocess(backend: str) -> bytes:
    root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src")
    env["REPRO_ARRAY_BACKEND"] = backend
    result = subprocess.run(
        [sys.executable, "-c", _SCHEDULE_SNIPPET],
        capture_output=True,
        env=env,
        cwd=str(root),
        check=True,
    )
    return result.stdout


def test_schedule_byte_identical_across_array_backends():
    """The forked rng stream must not depend on the numpy/list backend choice."""
    pytest.importorskip("numpy")
    list_backend = _schedule_via_subprocess("list")
    numpy_backend = _schedule_via_subprocess("numpy")
    assert list_backend == numpy_backend
    # and across reruns of the same backend (fresh interpreters).
    assert _schedule_via_subprocess("list") == list_backend


def test_schedule_respects_cap_and_jitter_band():
    options = RetryOptions(
        backoff_base_ms=100.0,
        backoff_multiplier=10.0,
        backoff_cap_ms=250.0,
        max_retries=4,
        jitter=0.0,
    )
    assert RetryPolicy(options, seed=0).schedule_for("k") == (100.0, 250.0, 250.0, 250.0)
    jittered = RetryPolicy(
        RetryOptions(
            backoff_base_ms=100.0,
            backoff_multiplier=10.0,
            backoff_cap_ms=250.0,
            max_retries=4,
            jitter=0.5,
        ),
        seed=0,
    ).schedule_for("k")
    caps = (100.0, 250.0, 250.0, 250.0)
    for delay, cap in zip(jittered, caps):
        assert cap * 0.5 <= delay <= cap


# -- classification -----------------------------------------------------------------


def test_transport_errors_are_retryable():
    for error in (
        WorkerUnavailable(0, "worker process died"),
        WorkerTimeout(0, "apply", 0.5),
        BrokenPipeError(),
        EOFError(),
        OSError("pipe"),
        RemoteStoreError(0, RETRYABLE, "disk hiccup"),
    ):
        assert classify_error(error) == RETRYABLE


def test_constraint_violations_are_fatal():
    assert classify_error(StoreConstraintError("UNIQUE constraint failed")) == FATAL
    assert classify_error(RemoteStoreError(0, FATAL, "UNIQUE constraint failed")) == FATAL
    assert classify_error(ValueError("malformed statement")) == FATAL


# -- run() semantics ----------------------------------------------------------------


def _recording_policy(options: RetryOptions, seed: int = 0):
    slept: list[float] = []
    policy = RetryPolicy(options, seed=seed, sleep=slept.append)
    return policy, slept


def test_budget_exhaustion_raises_after_max_retries_plus_one_attempts():
    options = RetryOptions(max_retries=3, backoff_base_ms=10.0)
    policy, slept = _recording_policy(options)
    calls = []

    def attempt():
        calls.append(1)
        raise WorkerTimeout(0, "apply", 0.5)

    with pytest.raises(RetryBudgetExhausted) as info:
        policy.run("apply", "k", attempt)
    assert len(calls) == options.max_retries + 1
    assert info.value.attempts == options.max_retries + 1
    assert isinstance(info.value.last_error, WorkerTimeout)
    # every scheduled delay was actually slept, in order.
    assert tuple(s * 1000.0 for s in slept) == pytest.approx(policy.schedule_for("k"))


def test_success_after_transient_failures_consumes_partial_budget():
    policy, slept = _recording_policy(RetryOptions(max_retries=4, backoff_base_ms=5.0))
    attempts = iter(
        [WorkerUnavailable(0, "restarting"), WorkerUnavailable(0, "restarting"), None]
    )

    def attempt():
        error = next(attempts)
        if error is not None:
            raise error
        return "applied"

    assert policy.run("apply", "k", attempt) == "applied"
    assert len(slept) == 2


def test_non_retryable_error_never_retries_and_never_sleeps():
    policy, slept = _recording_policy(RetryOptions(max_retries=5, backoff_base_ms=10.0))
    calls = []

    def attempt():
        calls.append(1)
        raise StoreConstraintError("UNIQUE constraint failed: account.id")

    with pytest.raises(StoreConstraintError):
        policy.run("apply", "k", attempt)
    assert calls == [1]
    assert slept == []


def test_zero_retries_budget_fails_on_first_retryable_error():
    policy, slept = _recording_policy(RetryOptions(max_retries=0))
    with pytest.raises(RetryBudgetExhausted) as info:
        policy.run("read", "k", lambda: (_ for _ in ()).throw(WorkerTimeout(0, "read", 0.5)))
    assert info.value.attempts == 1
    assert slept == []


# -- the classification table (audited by the exception-classification pass) --------


def test_every_storage_exception_type_is_registered():
    """The table is total over the layer's own exception types, by name."""
    from repro.storage.coordinator import InDoubtError
    from repro.storage.retry import EXCEPTION_CLASSIFICATION
    from repro.storage.sql import UnsupportedStatementError

    for klass in (
        WorkerUnavailable,
        WorkerTimeout,
        RemoteStoreError,
        StoreConstraintError,
        UnsupportedStatementError,
        RetryBudgetExhausted,
        InDoubtError,
    ):
        assert klass.__name__ in EXCEPTION_CLASSIFICATION, klass.__name__


def test_classification_walks_the_mro():
    # ConnectionResetError is unregistered itself; it inherits
    # ConnectionError's RETRYABLE through the MRO walk.
    assert classify_error(ConnectionResetError("peer reset")) == RETRYABLE
    # StoreConstraintError registers itself FATAL ahead of its ValueError base.
    assert classify_error(StoreConstraintError("UNIQUE constraint failed")) == FATAL


def test_remote_store_error_carries_its_own_kind():
    assert classify_error(RemoteStoreError(0, RETRYABLE, "disk io")) == RETRYABLE
    assert classify_error(RemoteStoreError(0, FATAL, "duplicate key")) == FATAL


def test_unregistered_exception_defaults_to_fatal():
    class NovelError(Exception):
        pass

    assert classify_error(NovelError("brand new")) == FATAL


def test_terminal_policy_outcomes_are_fatal():
    from repro.storage.coordinator import InDoubtError

    exhausted = RetryBudgetExhausted("apply", 3, WorkerTimeout(0, "apply", 0.5))
    assert classify_error(exhausted) == FATAL
    assert classify_error(InDoubtError("txn-1 outcome unknown")) == FATAL
