"""Kill-at-every-journal-record matrix for the real-storage migrator.

The storage mirror of ``tests/online/test_journaled_migration.py``: a
12-tuple 2 -> 4 resize, but the tuples are rows in SQLite partition files
owned by worker processes and every copy/drop is a real cross-partition row
movement through the ``_repro_applied`` dedup table.  For every journal
record index the migration coordinator is killed right after that record
became durable (persist-then-kill), and the surviving cluster must reach a
consistent end state both ways:

* **resume**: a fresh :class:`StorageMigrator` attached to the reloaded
  journal completes the resize, replaying at most one idempotent batch;
* **cancel**: the fresh migrator rolls the resize back, restoring the
  pre-migration placement and deleting the added partitions' files.

Either way the SQLite files are audited row by row against the oracle
database: no lost rows, no phantoms, no unreachable tuples, exact tuple
conservation.  The record count is derived from a fault-free dry run of the
*identical* plan on the simulated cluster — same state machine, same batch
size — so collection never spawns worker processes.
"""

from __future__ import annotations

import pytest

from repro.catalog.schema import Schema, Table, integer_column, string_column
from repro.catalog.tuples import TupleId
from repro.core.strategies import LookupTablePartitioning, hash_home
from repro.distributed.cluster import Cluster
from repro.distributed.faults import CoordinatorDeath, CoordinatorKill, FaultPlan
from repro.engine.database import Database
from repro.graph.assignment import PartitionAssignment
from repro.online.migration import (
    JournaledMigrator,
    MemoryJournalSink,
    MigrationJournal,
    plan_migration,
)
from repro.routing.lookup import build_lookup_table
from repro.routing.router import Router
from repro.storage import SqliteStorageCluster, StorageMigrator, plan_storage_resize

pytestmark = [pytest.mark.storage, pytest.mark.slow]

NUM_TUPLES = 12
OLD_K = 2
NEW_K = 4
BATCH = 3
MIGRATION_ID = "matrix"


def _tid(i: int) -> TupleId:
    return TupleId("account", (i,))


def _schema() -> Schema:
    return Schema(
        "bank",
        [
            Table(
                "account",
                [integer_column("id"), string_column("name"), integer_column("bal")],
                primary_key=["id"],
            )
        ],
    )


def _database() -> Database:
    database = Database(_schema())
    for i in range(NUM_TUPLES):
        database.insert_row("account", {"id": i, "name": f"acct-{i}", "bal": 100 + i})
    return database


def _old_assignment() -> PartitionAssignment:
    old = PartitionAssignment(OLD_K)
    for i in range(NUM_TUPLES):
        old.assign(_tid(i), {i % OLD_K})
    return old


def _router(schema: Schema) -> Router:
    old = _old_assignment()
    strategy = LookupTablePartitioning(OLD_K, old, "hash")
    return Router(strategy, schema, build_lookup_table(old))


def _dry_run_records() -> int:
    """Fault-free record count of this exact scenario, no worker processes.

    ``plan_storage_resize`` re-homes every singleton to ``hash_home`` at the
    new partition count; replaying that same plan through the *simulated*
    cluster walks the identical journal record stream (the state machine and
    batch size are shared), giving the matrix bound without any subprocess
    at collection time.
    """
    database = _database()
    old = _old_assignment()
    strategy = LookupTablePartitioning(OLD_K, old, "hash")
    cluster = Cluster.from_database(database, strategy)
    router = Router(strategy, database.schema, build_lookup_table(old))
    new = PartitionAssignment(NEW_K)
    for i in range(NUM_TUPLES):
        new.assign(_tid(i), hash_home(_tid(i), NEW_K))
    plan = plan_migration(strategy.partitions_for_tuple, new)
    journal = MigrationJournal.for_plan(
        plan,
        kind="resize",
        flip_mode="swap",
        old_num_partitions=OLD_K,
        new_num_partitions=NEW_K,
    )
    JournaledMigrator(
        cluster, router, journal, sink=MemoryJournalSink(), batch_size=BATCH
    ).run()
    assert journal.state == "completed"
    return journal.records


TOTAL_RECORDS = _dry_run_records()


def _deploy(tmp_path):
    """A started 2-partition worker cluster plus its router and oracle."""
    database = _database()
    router = _router(database.schema)
    cluster = SqliteStorageCluster.from_database(
        tmp_path / "cluster", database, router.strategy
    ).start()
    return cluster, router, database


def _assert_files_match_oracle(cluster, router, database, expected_k: int) -> None:
    """Audit the closed cluster's SQLite files row by row against the oracle."""
    assert cluster.num_partitions == expected_k
    cluster.close()
    locations: dict[TupleId, set[int]] = {}
    for partition in range(cluster.num_partitions):
        store = cluster.open_store(partition)
        try:
            for key, row in store.all_rows("account").items():
                tuple_id = TupleId("account", key)
                locations.setdefault(tuple_id, set()).add(partition)
                assert database.get_row(tuple_id) == row, tuple_id  # lost/phantom
        finally:
            store.close()
    assert set(locations) == set(database.all_tuple_ids())  # conservation
    for tuple_id, resident in locations.items():
        placement = router.placement_of(tuple_id)
        assert any(partition in resident for partition in placement), tuple_id


def _kill_matrix_setup(tmp_path, kill_at: int):
    """Run the migration into a coordinator kill at record ``kill_at``."""
    cluster, router, database = _deploy(tmp_path)
    journal = plan_storage_resize(cluster, NEW_K, migration_id=MIGRATION_ID)
    sink = MemoryJournalSink()
    injector = FaultPlan(
        seed=7, coordinator_kills=(CoordinatorKill(at_record=kill_at),)
    ).build()
    migrator = StorageMigrator(
        cluster, router, journal, sink=sink, batch_size=BATCH, injector=injector
    )
    with pytest.raises(CoordinatorDeath):
        migrator.run()
    resumed = sink.load()
    # persist-then-kill: the record the kill targeted reached the sink.
    assert resumed.records == kill_at
    assert resumed.migration_id == MIGRATION_ID
    assert resumed.backend == "storage"
    return cluster, router, database, sink, resumed


def test_forward_run_completes_and_files_are_consistent(tmp_path):
    cluster, router, database = _deploy(tmp_path)
    try:
        journal = plan_storage_resize(cluster, NEW_K, migration_id=MIGRATION_ID)
        sink = MemoryJournalSink()
        report = StorageMigrator(
            cluster, router, journal, sink=sink, batch_size=BATCH
        ).run()
        assert journal.state == "completed"
        assert journal.records == TOTAL_RECORDS
        assert report.copies == len(journal.plan.copies)
        assert report.drops == len(journal.plan.drops)
        assert report.skipped == 0
        assert report.bytes_copied > 0
        _assert_files_match_oracle(cluster, router, database, NEW_K)
    finally:
        cluster.close()


@pytest.mark.parametrize("kill_at", range(1, TOTAL_RECORDS + 1))
def test_kill_at_every_record_then_resume_completes(tmp_path, kill_at):
    cluster, router, database, sink, resumed = _kill_matrix_setup(tmp_path, kill_at)
    try:
        StorageMigrator(
            cluster, router, resumed, sink=sink, batch_size=BATCH
        ).run()
        assert resumed.state == "completed"
        _assert_files_match_oracle(cluster, router, database, NEW_K)
    finally:
        cluster.close()


@pytest.mark.parametrize("kill_at", range(1, TOTAL_RECORDS + 1))
def test_kill_at_every_record_then_cancel_rolls_back(tmp_path, kill_at):
    cluster, router, database, sink, resumed = _kill_matrix_setup(tmp_path, kill_at)
    try:
        if resumed.is_terminal:
            # Killed at the final record: nothing left to cancel, and
            # cancelling a terminal journal must refuse.
            with pytest.raises(ValueError):
                StorageMigrator(
                    cluster, router, resumed, sink=sink, batch_size=BATCH
                ).cancel()
            _assert_files_match_oracle(cluster, router, database, NEW_K)
            return
        recovery = StorageMigrator(
            cluster, router, resumed, sink=sink, batch_size=BATCH
        )
        recovery.cancel()
        recovery.run()
        assert resumed.state == "cancelled"
        # Rollback undoes everything: back at the old k, the added
        # partitions' files deleted, the old placement routable.
        _assert_files_match_oracle(cluster, router, database, OLD_K)
        for partition in range(OLD_K, NEW_K):
            assert not (tmp_path / "cluster" / f"partition-{partition}.sqlite").exists()
    finally:
        cluster.close()


def test_worker_sigkill_mid_copy_rides_through(tmp_path):
    """A SIGKILLed partition worker mid-migration is waited out, not fatal."""
    cluster, router, database = _deploy(tmp_path)
    try:
        journal = plan_storage_resize(cluster, NEW_K, migration_id=MIGRATION_ID)
        migrator = StorageMigrator(
            cluster, router, journal, sink=MemoryJournalSink(), batch_size=BATCH
        )
        migrator.step()  # planned -> copying (window open)
        migrator.step()  # first copy batch
        assert journal.state == "copying"
        cluster.kill_worker(0)
        migrator.run()
        assert journal.state == "completed"
        assert cluster.restart_count() >= 1
        _assert_files_match_oracle(cluster, router, database, NEW_K)
    finally:
        cluster.close()


def test_plan_storage_resize_rejects_bad_partition_count(tmp_path):
    cluster, _, _ = _deploy(tmp_path)
    try:
        with pytest.raises(ValueError):
            plan_storage_resize(cluster, 0, migration_id=MIGRATION_ID)
    finally:
        cluster.close()
