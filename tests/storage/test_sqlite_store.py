"""One partition's SQLite store: WAL mode, exactly-once apply, audits."""

from __future__ import annotations

import pytest

from repro.catalog.tuples import TupleId
from repro.sqlparse.ast import InsertStatement, SelectStatement, UpdateStatement, eq
from repro.storage.sqlite_store import SqlitePartitionStore, StoreConstraintError


@pytest.fixture
def store(tmp_path, bank_schema):
    with SqlitePartitionStore(tmp_path / "p0.sqlite", bank_schema) as opened:
        yield opened


def _seed_account(store, account_id=1, name="carlo", bal=100):
    store.bulk_load("account", [{"id": account_id, "name": name, "bal": bal}])


def test_wal_mode_is_active(store):
    (mode,) = store._connection.execute("PRAGMA journal_mode").fetchone()
    assert mode == "wal"


def test_apply_is_exactly_once_for_delta_updates(store):
    _seed_account(store, bal=100)
    statements = [UpdateStatement("account", {"bal": ("delta", -30)}, where=eq("id", 1))]
    assert store.apply_transaction("txn-1", statements) == "applied"
    # the retried-after-timeout case: same txn id must be a no-op.
    assert store.apply_transaction("txn-1", statements) == "duplicate"
    rows = store.execute_read(SelectStatement(("account",), where=eq("id", 1)))
    assert rows[0][2] == 70
    assert store.has_transaction("txn-1")
    assert not store.has_transaction("txn-2")


def test_constraint_violation_rolls_back_whole_batch(store):
    _seed_account(store, account_id=1)
    statements = [
        UpdateStatement("account", {"bal": ("delta", -10)}, where=eq("id", 1)),
        InsertStatement("account", {"id": 1, "name": "dup", "bal": 0}),  # duplicate pk
    ]
    with pytest.raises(StoreConstraintError):
        store.apply_transaction("txn-bad", statements)
    # atomicity: the update preceding the violating insert must not persist,
    # and the txn must not be marked applied (a retry would legitimately fail
    # again, classified fatal).
    rows = store.execute_read(SelectStatement(("account",), where=eq("id", 1)))
    assert rows[0][2] == 100
    assert not store.has_transaction("txn-bad")


def test_audit_walks_cover_loaded_rows(store):
    store.bulk_load(
        "account",
        [
            {"id": 1, "name": "carlo", "bal": 10},
            {"id": 2, "name": "evan", "bal": 20},
        ],
    )
    assert store.row_count() == 2
    rows = store.all_rows("account")
    assert rows[(1,)]["name"] == "carlo"
    assert rows[(2,)]["bal"] == 20
    assert sorted(store.tuple_ids()) == [
        TupleId("account", (1,)),
        TupleId("account", (2,)),
    ]


def test_state_survives_reopen(tmp_path, bank_schema):
    path = tmp_path / "p0.sqlite"
    with SqlitePartitionStore(path, bank_schema) as store:
        _seed_account(store)
        store.apply_transaction(
            "txn-1",
            [UpdateStatement("account", {"bal": ("delta", 5)}, where=eq("id", 1))],
        )
    # a reopen is exactly what a supervisor restart does: the dedup marker
    # and the committed write must both be there.
    with SqlitePartitionStore(path, bank_schema) as reopened:
        assert reopened.has_transaction("txn-1")
        rows = reopened.execute_read(SelectStatement(("account",), where=eq("id", 1)))
        assert rows[0][2] == 105
