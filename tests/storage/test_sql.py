"""Statement-AST -> parameterised SQLite compilation."""

from __future__ import annotations

import pytest

from repro.sqlparse.ast import (
    And,
    ColumnRef,
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
    between,
    eq,
    in_list,
)
from repro.storage.sql import (
    UnsupportedStatementError,
    compile_predicate,
    compile_statement,
    create_schema_sql,
    quote_identifier,
)


def test_select_with_equality_predicate():
    sql, params = compile_statement(
        SelectStatement(("account",), where=eq("id", 3), limit=1)
    )
    assert sql == 'SELECT * FROM "account" WHERE "id" = ? LIMIT 1'
    assert params == [3]


def test_insert_binds_every_column():
    sql, params = compile_statement(
        InsertStatement("account", {"id": 9, "name": "zoe", "bal": 100})
    )
    assert sql == 'INSERT INTO "account" ("id", "name", "bal") VALUES (?, ?, ?)'
    assert params == [9, "zoe", 100]


def test_update_delta_compiles_to_self_referencing_assignment():
    sql, params = compile_statement(
        UpdateStatement("account", {"bal": ("delta", -50)}, where=eq("id", 1))
    )
    assert sql == 'UPDATE "account" SET "bal" = "bal" + ? WHERE "id" = ?'
    assert params == [-50, 1]


def test_delete_with_predicate():
    sql, params = compile_statement(DeleteStatement("account", where=eq("id", 2)))
    assert sql == 'DELETE FROM "account" WHERE "id" = ?'
    assert params == [2]


def test_between_and_empty_in_predicates():
    sql, params = compile_predicate(
        And((between("bal", 10, 20), in_list("id", ())))
    )
    assert sql == '("bal" BETWEEN ? AND ?) AND (0 = 1)'
    assert params == [10, 20]


def test_qualified_column_references():
    sql, _ = compile_statement(
        SelectStatement(
            ("account",),
            columns=(ColumnRef("bal", "account"),),
            where=eq("id", 1, table="account"),
        )
    )
    assert sql == 'SELECT "account"."bal" FROM "account" WHERE "account"."id" = ?'


def test_unsupported_statements_raise():
    with pytest.raises(UnsupportedStatementError):
        compile_statement(InsertStatement("account", {}))
    with pytest.raises(UnsupportedStatementError):
        compile_statement(UpdateStatement("account", {}))


def test_quote_identifier_escapes_embedded_quotes():
    assert quote_identifier('we"ird') == '"we""ird"'


def test_schema_ddl_has_primary_key_and_fk_indexes(bank_schema):
    ddl = create_schema_sql(bank_schema)
    assert any('PRIMARY KEY ("id")' in statement for statement in ddl)
