"""Property-based fuzz: the SQLite compiler agrees with the simulated engine.

Seeded random write-statement ASTs (inserts, delta and assignment updates,
deletes, over the mini-dialect's predicate grammar: =, <>, range
inequalities, BETWEEN, IN — alone and under AND/OR) are applied in the same
order to

* an in-memory :class:`~repro.engine.database.Database` (the simulated
  engine the planner and oracle audits trust), and
* a real :class:`~repro.storage.sqlite_store.SqlitePartitionStore` through
  :mod:`repro.storage.sql`'s compiled ``(sql, params)`` pairs,

and after every burst the two row states must be identical.  Any semantic
drift between the two execution paths — predicate evaluation, delta
updates, empty IN lists, type affinity — shows up as a row diff with the
seed that produced it.  Runs under both array backends, since the engine's
row state is the oracle every storage audit compares against.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog.schema import (
    Schema,
    Table,
    float_column,
    integer_column,
    string_column,
)
from repro.engine.database import Database
from repro.graph.backend import backend_context, numpy
from repro.sqlparse.ast import (
    And,
    ColumnRef,
    Comparison,
    DeleteStatement,
    InsertStatement,
    Or,
    UpdateStatement,
)
from repro.storage.sqlite_store import SqlitePartitionStore

pytestmark = pytest.mark.storage

BACKENDS = [
    "list",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(numpy is None, reason="numpy not installed"),
    ),
]

NUM_SEED_ROWS = 30
NUM_STATEMENTS = 200


def _schema() -> Schema:
    return Schema(
        "fuzz",
        [
            Table(
                "item",
                [
                    integer_column("id"),
                    string_column("name"),
                    integer_column("qty"),
                    float_column("score"),
                ],
                primary_key=["id"],
            )
        ],
    )


def _column(name: str) -> ColumnRef:
    return ColumnRef(name)


def _random_predicate(rng: random.Random, next_id: int):
    """A predicate from the dialect both execution paths support."""

    def leaf():
        kind = rng.randrange(5)
        if kind == 0:  # primary-key equality (sometimes missing rows)
            return Comparison(_column("id"), "=", value=rng.randrange(next_id + 5))
        if kind == 1:  # BETWEEN over the key space
            low = rng.randrange(next_id + 1)
            return Comparison(
                _column("id"), "between", low=low, high=low + rng.randrange(8)
            )
        if kind == 2:  # inequality on a non-key integer column
            operator = rng.choice(("<", "<=", ">", ">=", "<>"))
            return Comparison(_column("qty"), operator, value=rng.randrange(-5, 25))
        if kind == 3:  # IN lists, occasionally empty (matches nothing)
            population = range(next_id + 2)
            count = rng.choice((0, 1, 2, 4))
            values = tuple(rng.sample(population, min(count, next_id + 2)))
            return Comparison(_column("id"), "in", values=values)
        return Comparison(_column("name"), "=", value=f"item-{rng.randrange(next_id + 2)}")

    shape = rng.randrange(4)
    if shape == 0:
        return And(children=(leaf(), leaf()))
    if shape == 1:
        return Or(children=(leaf(), leaf()))
    return leaf()


def _random_statement(rng: random.Random, state: dict):
    kind = rng.randrange(6)
    if kind in (0, 1):  # insert a fresh row (unique key: both paths must agree)
        row_id = state["next_id"]
        state["next_id"] += 1
        return InsertStatement(
            "item",
            row={
                "id": row_id,
                "name": f"item-{row_id}",
                "qty": rng.randrange(0, 20),
                "score": round(rng.uniform(0.0, 10.0), 3),
            },
        )
    where = _random_predicate(rng, state["next_id"])
    if kind in (2, 3):  # delta update (the OLTP hot path)
        return UpdateStatement(
            "item",
            assignments={"qty": ("delta", rng.randrange(-3, 4))},
            where=where,
        )
    if kind == 4:  # plain assignment update
        return UpdateStatement(
            "item",
            assignments={
                "name": f"renamed-{rng.randrange(100)}",
                "score": round(rng.uniform(0.0, 10.0), 3),
            },
            where=where,
        )
    return DeleteStatement("item", where=where)


def _seed_rows() -> list[dict]:
    return [
        {"id": i, "name": f"item-{i}", "qty": i % 7, "score": float(i)}
        for i in range(NUM_SEED_ROWS)
    ]


def _engine_rows(database: Database) -> dict:
    return {key: dict(row) for key, row in database.storage("item").rows()}


@pytest.mark.parametrize("array_backend", BACKENDS)
@pytest.mark.parametrize("seed", range(3))
def test_compiled_statements_match_engine_row_state(tmp_path, seed, array_backend):
    with backend_context(array_backend):
        rng = random.Random(seed)
        schema = _schema()
        database = Database(schema)
        for row in _seed_rows():
            database.insert_row("item", row)
        store = SqlitePartitionStore(tmp_path / f"fuzz-{seed}.sqlite", schema)
        try:
            store.bulk_load("item", _seed_rows())
            state = {"next_id": NUM_SEED_ROWS}
            for index in range(NUM_STATEMENTS):
                statement = _random_statement(rng, state)
                database.execute(statement)
                outcome = store.apply_transaction(f"fuzz-{seed}-{index}", [statement])
                assert outcome == "applied"
                if index % 50 == 0:
                    assert store.all_rows("item") == _engine_rows(database)
            assert store.all_rows("item") == _engine_rows(database)
            # Exactly-once: replaying any txn id is a durable no-op.
            replay = store.apply_transaction(
                f"fuzz-{seed}-0", [DeleteStatement("item", where=None)]
            )
            assert replay == "duplicate"
            assert store.all_rows("item") == _engine_rows(database)
        finally:
            store.close()
