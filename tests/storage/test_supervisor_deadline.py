"""The supervisor's startup-probe deadline is a constructor knob.

The 30 s default exists for slow CI machines where spawned interpreters
boot lazily; tests and latency-sensitive callers can shrink it.  Probed
with a fake clock and stubbed pings — no worker process is ever spawned.
"""

from __future__ import annotations

import pytest

from repro.storage.supervisor import WorkerSupervisor
from repro.storage.worker import WorkerUnavailable

pytestmark = pytest.mark.storage


class _AliveProcess:
    def is_alive(self) -> bool:
        return True


class _AliveHandle:
    process = _AliveProcess()


def _supervisor(bank_schema, clock, deadline_s):
    return WorkerSupervisor(
        {0: "unused.sqlite"},
        bank_schema,
        startup_deadline_s=deadline_s,
        clock=lambda: clock["now"],
    )


def test_probe_gives_up_at_the_configured_deadline(bank_schema, monkeypatch):
    clock = {"now": 0.0}
    supervisor = _supervisor(bank_schema, clock, deadline_s=2.5)
    monkeypatch.setattr(supervisor, "handle", lambda partition: _AliveHandle())
    probes = []

    def silent_ping(partition):
        clock["now"] += 1.0
        probes.append(partition)
        return False

    monkeypatch.setattr(supervisor, "ping", silent_ping)
    with pytest.raises(WorkerUnavailable) as excinfo:
        supervisor._probe_all()
    assert "startup ping" in str(excinfo.value)
    # Deadline 2.5 with 1 s probes: attempts at t=1, 2, 3 — the third crosses.
    assert probes == [0, 0, 0]


def test_probe_succeeds_before_the_deadline(bank_schema, monkeypatch):
    clock = {"now": 0.0}
    supervisor = _supervisor(bank_schema, clock, deadline_s=5.0)
    monkeypatch.setattr(supervisor, "handle", lambda partition: _AliveHandle())
    answers = iter([False, False, True])

    def slow_ping(partition):
        clock["now"] += 1.0
        return next(answers)

    monkeypatch.setattr(supervisor, "ping", slow_ping)
    supervisor._probe_all()  # returns without raising


def test_explicit_deadline_overrides_the_knob(bank_schema, monkeypatch):
    clock = {"now": 0.0}
    supervisor = _supervisor(bank_schema, clock, deadline_s=1000.0)
    monkeypatch.setattr(supervisor, "handle", lambda partition: _AliveHandle())

    def silent_ping(partition):
        clock["now"] += 1.0
        return False

    monkeypatch.setattr(supervisor, "ping", silent_ping)
    with pytest.raises(WorkerUnavailable):
        supervisor._probe_all(deadline_s=2.0)
    assert clock["now"] < 10.0  # gave up at the override, not the knob
