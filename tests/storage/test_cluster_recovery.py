"""End-to-end: supervised workers, routed transactions, crash recovery.

These tests spawn real worker processes (spawn start method) over real
SQLite files, SIGKILL one mid-run, and assert the retry/restart path keeps
every committed write — the tier-1 slice of what the storage-resilience
chaos experiment audits at scale.
"""

from __future__ import annotations

import pytest

from repro.catalog.tuples import TupleId
from repro.core.strategies import HashPartitioning
from repro.routing.router import Router
from repro.sqlparse.ast import SelectStatement, UpdateStatement, eq
from repro.storage import (
    ClosedLoopDriver,
    RetryOptions,
    SqliteStorageCluster,
    StorageCoordinator,
)
from repro.workload.trace import Transaction

ACCOUNT_IDS = (1, 2, 3, 4, 5)


def _debit(account_id: int, amount: int) -> UpdateStatement:
    return UpdateStatement(
        "account", {"bal": ("delta", -amount)}, where=eq("id", account_id)
    )


def _ids_on_distinct_partitions(strategy) -> tuple[int, int]:
    by_partition: dict[int, int] = {}
    for account_id in ACCOUNT_IDS:
        (partition,) = strategy.partitions_for_tuple(TupleId("account", (account_id,)))
        by_partition.setdefault(partition, account_id)
        if len(by_partition) == 2:
            break
    partitions = sorted(by_partition)
    assert len(partitions) == 2, "hash placement collapsed onto one partition"
    return by_partition[partitions[0]], by_partition[partitions[1]]


@pytest.fixture
def deployed(tmp_path, bank_database):
    # attribute hashing on the key column so single-key writes pin to one
    # partition (plain pk-hashing has no condition router and broadcasts).
    strategy = HashPartitioning(2, {"account": ("id",)})
    cluster = SqliteStorageCluster.from_database(tmp_path, bank_database, strategy)
    cluster.start()
    router = Router(strategy, bank_database.schema)
    coordinator = StorageCoordinator(
        cluster,
        router,
        oracle=bank_database,
        retry_options=RetryOptions(timeout_ms=500.0, max_retries=5),
        seed=0,
    )
    try:
        yield strategy, cluster, coordinator
    finally:
        cluster.close()


def _audit_against_oracle(cluster, oracle):
    """Every surviving SQLite row must equal the oracle's row, and vice versa."""
    seen: set[TupleId] = set()
    for partition in range(cluster.num_partitions):
        with cluster.open_store(partition) as store:
            for key, row in store.all_rows("account").items():
                tuple_id = TupleId("account", key)
                seen.add(tuple_id)
                assert row == oracle.get_row(tuple_id), f"lost update at {tuple_id}"
    assert seen == set(oracle.all_tuple_ids()), "tuple conservation violated"


def test_committed_writes_survive_a_worker_sigkill(deployed, bank_database):
    strategy, cluster, coordinator = deployed
    first, second = _ids_on_distinct_partitions(strategy)

    single = coordinator.execute_transaction(
        Transaction((_debit(first, 10),)), "txn-single"
    )
    assert single.status == "committed"
    assert single.scope == "single"

    distributed = coordinator.execute_transaction(
        Transaction((_debit(first, 5), _debit(second, 5))), "txn-distributed"
    )
    assert distributed.status == "committed"
    assert distributed.scope == "distributed"

    # SIGKILL the worker owning `first`; the next write must ride the
    # supervisor restart via the retry policy, not fail.
    (victim,) = strategy.partitions_for_tuple(TupleId("account", (first,)))
    cluster.kill_worker(victim)
    after_kill = coordinator.execute_transaction(
        Transaction((_debit(first, 7),)), "txn-after-kill"
    )
    assert after_kill.status == "committed"
    assert cluster.restart_count() >= 1

    reads = coordinator.execute_transaction(
        Transaction((SelectStatement(("account",), where=eq("id", first)),)),
        "txn-read",
    )
    assert reads.status == "committed"

    cluster.close()
    _audit_against_oracle(cluster, bank_database)


def test_closed_loop_driver_reports_every_transaction(deployed, bank_database):
    strategy, cluster, coordinator = deployed
    transactions = [
        Transaction((_debit(account_id, 1),), transaction_id=index)
        for index, account_id in enumerate(ACCOUNT_IDS * 4)
    ]
    kills: list[int] = []

    def chaos(commits: int) -> None:
        if commits == 4 and not kills:
            kills.append(commits)
            cluster.kill_worker(0)

    driver = ClosedLoopDriver(coordinator, num_clients=3, on_commit=chaos)
    report = driver.run(transactions, txn_id_prefix="drv")
    assert report.total == len(transactions)
    assert report.committed + report.aborted == report.total
    assert report.committed == report.total  # retries ride the restart
    assert kills == [4]
    assert cluster.restart_count() >= 1
    assert len(report.latencies_ms) == report.total
    payload = report.to_payload()
    assert payload["committed"] == report.committed
    assert "wall_s" not in payload  # wall-clock stays out of deterministic payloads

    cluster.close()
    _audit_against_oracle(cluster, bank_database)


def test_supervisor_restart_is_journaled(deployed):
    strategy, cluster, coordinator = deployed
    cluster.kill_worker(1)
    coordinator.execute_transaction(
        Transaction((_debit(_ids_on_distinct_partitions(strategy)[1], 1),)),
        "txn-probe",
    )
    events = cluster.supervisor.events
    kinds = {event["event"] for event in events}
    assert "start" in kinds
    assert "crash-detected" in kinds
    assert "restart" in kinds
