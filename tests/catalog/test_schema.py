"""Tests for the catalog schema objects."""

import pytest

from repro.catalog.schema import (
    Column,
    ColumnType,
    ForeignKey,
    Schema,
    Table,
    integer_column,
    string_column,
)


def make_table() -> Table:
    return Table(
        "account",
        [integer_column("id"), string_column("name"), integer_column("bal")],
        primary_key=["id"],
    )


class TestColumn:
    def test_python_types(self):
        assert ColumnType.INTEGER.python_type() is int
        assert ColumnType.FLOAT.python_type() is float
        assert ColumnType.STRING.python_type() is str

    def test_validate_value_accepts_matching_type(self):
        integer_column("x").validate_value(3)
        string_column("s").validate_value("hello")

    def test_validate_value_rejects_mismatch(self):
        with pytest.raises(TypeError):
            integer_column("x").validate_value("nope")

    def test_float_column_accepts_int(self):
        Column("f", ColumnType.FLOAT).validate_value(3)


class TestTable:
    def test_basic_properties(self):
        table = make_table()
        assert table.column_names == ("id", "name", "bal")
        assert table.primary_key == ("id",)
        assert table.row_byte_size == 8 + 32 + 8

    def test_duplicate_column_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [integer_column("a"), integer_column("a")], ["a"])

    def test_primary_key_must_exist(self):
        with pytest.raises(ValueError):
            Table("t", [integer_column("a")], ["missing"])

    def test_validate_row_detects_missing_and_extra(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.validate_row({"id": 1, "name": "x"})
        with pytest.raises(ValueError):
            table.validate_row({"id": 1, "name": "x", "bal": 2, "extra": 1})

    def test_primary_key_of(self):
        table = make_table()
        assert table.primary_key_of({"id": 7, "name": "x", "bal": 0}) == (7,)

    def test_foreign_key_length_mismatch(self):
        with pytest.raises(ValueError):
            ForeignKey(("a", "b"), "parent", ("x",))

    def test_foreign_key_column_must_exist(self):
        with pytest.raises(ValueError):
            Table(
                "t",
                [integer_column("a")],
                ["a"],
                [ForeignKey(("missing",), "parent", ("x",))],
            )


class TestSchema:
    def test_add_and_lookup(self):
        schema = Schema("s", [make_table()])
        assert schema.has_table("account")
        assert schema.table("account").name == "account"
        assert schema.table_names == ("account",)

    def test_duplicate_table_rejected(self):
        schema = Schema("s", [make_table()])
        with pytest.raises(ValueError):
            schema.add_table(make_table())

    def test_unknown_table_raises(self):
        schema = Schema("s")
        with pytest.raises(KeyError):
            schema.table("nope")

    def test_validate_foreign_keys_detects_unknown_parent(self):
        child = Table(
            "child",
            [integer_column("id"), integer_column("parent_id")],
            ["id"],
            [ForeignKey(("parent_id",), "parent", ("id",))],
        )
        schema = Schema("s", [child])
        with pytest.raises(ValueError):
            schema.validate_foreign_keys()

    def test_validate_foreign_keys_passes_when_consistent(self):
        parent = Table("parent", [integer_column("id")], ["id"])
        child = Table(
            "child",
            [integer_column("id"), integer_column("parent_id")],
            ["id"],
            [ForeignKey(("parent_id",), "parent", ("id",))],
        )
        Schema("s", [parent, child]).validate_foreign_keys()
