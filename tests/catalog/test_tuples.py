"""Tests for tuple identity."""

import pytest

from repro.catalog.schema import Table, integer_column
from repro.catalog.tuples import TupleId, tuple_id_for_row


def test_tuple_id_is_hashable_and_comparable():
    first = TupleId("t", (1,))
    second = TupleId("t", (1,))
    third = TupleId("t", (2,))
    assert first == second
    assert hash(first) == hash(second)
    assert first < third


def test_scalar_key_is_normalised_to_tuple():
    tuple_id = TupleId("t", 5)
    assert tuple_id.key == (5,)
    assert tuple_id.single_key == 5


def test_single_key_raises_for_composite():
    with pytest.raises(ValueError):
        TupleId("t", (1, 2)).single_key


def test_str_representation():
    assert str(TupleId("account", (3,))) == "account:3"
    assert str(TupleId("stock", (1, 2))) == "stock:(1, 2)"


def test_tuple_id_for_row():
    table = Table("t", [integer_column("a"), integer_column("b")], ["a", "b"])
    tuple_id = tuple_id_for_row(table, {"a": 1, "b": 2})
    assert tuple_id == TupleId("t", (1, 2))
