"""Tests for the benchmark workload generators."""

import pytest

from repro.core.cost import evaluate_strategy
from repro.sqlparse.ast import SelectStatement, is_write
from repro.workload.analysis import workload_statistics
from repro.workload.rwsets import extract_access_trace
from repro.workloads import (
    EpinionsConfig,
    TpccConfig,
    TpceConfig,
    generate_epinions,
    generate_random_workload,
    generate_simplecount,
    generate_tpce,
    generate_ycsb_a,
    generate_ycsb_e,
)


class TestSimplecount:
    def test_local_workload_is_single_block(self):
        bundle = generate_simplecount(num_rows=100, num_transactions=50, num_blocks=5)
        strategy = bundle.manual_strategy(5)
        trace = extract_access_trace(bundle.database, bundle.workload)
        report = evaluate_strategy(strategy, trace, bundle.database)
        assert report.distributed_fraction == 0.0

    def test_distributed_workload_crosses_blocks(self):
        bundle = generate_simplecount(
            num_rows=100, num_transactions=50, num_blocks=5, single_partition=False
        )
        strategy = bundle.manual_strategy(5)
        trace = extract_access_trace(bundle.database, bundle.workload)
        report = evaluate_strategy(strategy, trace, bundle.database)
        assert report.distributed_fraction == 1.0

    def test_row_count_validation(self):
        with pytest.raises(ValueError):
            generate_simplecount(num_rows=101, num_blocks=5)


class TestYcsb:
    def test_workload_a_mix_and_size(self):
        bundle = generate_ycsb_a(num_rows=500, num_transactions=400)
        assert bundle.database.row_count() == 500
        stats = workload_statistics(bundle.workload)
        assert stats.transaction_count == 400
        assert 0.4 < stats.write_fraction < 0.6
        assert all(len(t.statements) == 1 for t in bundle.workload)

    def test_workload_a_keys_are_skewed(self):
        bundle = generate_ycsb_a(num_rows=500, num_transactions=500)
        trace = extract_access_trace(bundle.database, bundle.workload)
        counts = trace.access_counts()
        assert max(counts.values()) >= 5  # Zipfian hot keys

    def test_workload_e_scans(self):
        bundle = generate_ycsb_e(num_rows=500, num_transactions=300, max_scan_length=10)
        stats = workload_statistics(bundle.workload)
        assert stats.write_fraction < 0.15
        scans = [
            statement
            for transaction in bundle.workload
            for statement in transaction.statements
            if isinstance(statement, SelectStatement) and statement.where.operator == "between"
        ]
        assert scans

    def test_manual_range_strategy_handles_scans(self):
        bundle = generate_ycsb_e(num_rows=500, num_transactions=300, max_scan_length=5)
        trace = extract_access_trace(bundle.database, bundle.workload)
        report = evaluate_strategy(bundle.manual_strategy(2), trace, bundle.database)
        assert report.distributed_fraction < 0.1

    def test_determinism(self):
        first = generate_ycsb_a(num_rows=100, num_transactions=50, seed=3)
        second = generate_ycsb_a(num_rows=100, num_transactions=50, seed=3)
        assert [str(t.statements[0]) for t in first.workload] == [
            str(t.statements[0]) for t in second.workload
        ]


class TestTpcc:
    def test_database_shape(self, tiny_tpcc):
        database = tiny_tpcc.database
        config_warehouses = tiny_tpcc.metadata["warehouses"]
        assert database.row_count("warehouse") == config_warehouses
        assert database.row_count("district") == config_warehouses * 3
        assert database.row_count("item") == 50
        assert database.row_count("stock") == config_warehouses * 50

    def test_transaction_mix(self, tiny_tpcc):
        kinds = {t.kind for t in tiny_tpcc.workload}
        assert {"new_order", "payment"} <= kinds

    def test_multi_warehouse_fraction(self, tiny_tpcc):
        trace = extract_access_trace(tiny_tpcc.database, tiny_tpcc.workload)
        strategy = tiny_tpcc.manual_strategy(2)
        report = evaluate_strategy(strategy, trace, tiny_tpcc.database)
        # Roughly 10% of TPC-C transactions touch more than one warehouse.
        assert 0.02 < report.distributed_fraction < 0.30

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            TpccConfig(new_order_weight=0.9)


class TestTpce:
    def test_schema_and_mix(self):
        bundle = generate_tpce(TpceConfig(customers=50, securities=30), num_transactions=300)
        assert len(bundle.database.schema.tables) == 12
        assert bundle.database.row_count("customer") == 50
        kinds = {t.kind for t in bundle.workload}
        assert "trade_status" in kinds and "market_watch" in kinds
        stats = workload_statistics(bundle.workload)
        assert stats.write_fraction < 0.5  # read-heavy benchmark

    def test_no_manual_baseline(self):
        bundle = generate_tpce(TpceConfig(customers=20, securities=10), num_transactions=50)
        assert bundle.manual_strategy(2) is None


class TestEpinions:
    def test_schema_and_community_locality(self):
        config = EpinionsConfig(num_users=100, num_items=100, num_communities=5)
        bundle = generate_epinions(config, num_transactions=200)
        database = bundle.database
        assert database.row_count("users") == 100
        assert database.row_count("items") == 100
        assert database.row_count("reviews") > 0
        # Most reviews stay within the author's community.
        within = 0
        total = 0
        for _key, row in database.storage("reviews").rows():
            total += 1
            if row["u_id"] % 5 == row["i_id"] % 5:
                within += 1
        assert within / total > 0.7

    def test_manual_strategy_replicates_users(self):
        from repro.catalog.tuples import TupleId

        strategy = generate_epinions(
            EpinionsConfig(num_users=20, num_items=20, num_communities=2), num_transactions=10
        ).manual_strategy(4)
        assert strategy.partitions_for_tuple(TupleId("users", (1,))) == frozenset(range(4))
        assert len(strategy.partitions_for_tuple(TupleId("items", (1,)), {"i_id": 1})) == 1


class TestRandom:
    def test_every_transaction_writes_two_tuples(self):
        bundle = generate_random_workload(num_rows=200, num_transactions=100)
        trace = extract_access_trace(bundle.database, bundle.workload)
        assert all(len(access.write_set) == 2 for access in trace)
        assert all(is_write(s) for t in bundle.workload for s in t.statements)


class TestDriftingWorkloads:
    def test_rotating_hotspot_phases_touch_disjoint_windows(self):
        from repro.workloads import generate_rotating_hotspot

        bundle = generate_rotating_hotspot(
            num_rows=600,
            transactions_per_phase=100,
            num_phases=2,
            hot_window=150,
            uniform_fraction=0.0,
            seed=0,
        )
        assert len(bundle.phases) == 2
        traces = [
            extract_access_trace(bundle.database, phase) for phase in bundle.phases
        ]
        keys = [
            {tuple_id.key[0] for access in trace for tuple_id in access.touched}
            for trace in traces
        ]
        assert keys[0] and max(keys[0]) < 150
        assert keys[1] and min(keys[1]) >= 150 and max(keys[1]) < 300
        # Group transactions are multi-tuple and contain exactly one write.
        for trace in traces:
            for access in trace:
                assert len(access.touched) == 3
                assert len(access.write_set) == 1

    def test_rotating_hotspot_is_deterministic(self):
        from repro.workloads import generate_rotating_hotspot

        a = generate_rotating_hotspot(num_rows=600, transactions_per_phase=50, seed=3)
        b = generate_rotating_hotspot(num_rows=600, transactions_per_phase=50, seed=3)
        for phase_a, phase_b in zip(a.phases, b.phases):
            assert [t.statements for t in phase_a] == [t.statements for t in phase_b]

    def test_rotating_hotspot_validates_geometry(self):
        from repro.workloads import generate_rotating_hotspot

        with pytest.raises(ValueError):
            generate_rotating_hotspot(num_rows=100, hot_window=90, num_phases=2)
        with pytest.raises(ValueError):
            generate_rotating_hotspot(hot_window=100, group_size=3)

    def test_combined_stream_concatenates_phases(self):
        from repro.workloads import generate_rotating_hotspot

        bundle = generate_rotating_hotspot(
            num_rows=600, transactions_per_phase=40, num_phases=2, hot_window=150
        )
        combined = bundle.combined()
        assert len(combined) == sum(len(phase) for phase in bundle.phases)
        assert bundle.training is bundle.phases[0]

    def test_warehouse_shift_rotates_hot_warehouse(self):
        from repro.workloads import generate_warehouse_shift_tpcc

        bundle = generate_warehouse_shift_tpcc(
            warehouses=4,
            hot_warehouses=1,
            transactions_per_phase=120,
            num_phases=2,
            hot_weight=20.0,
            seed=0,
        )
        assert len(bundle.phases) == 2

        def warehouse_histogram(workload):
            from repro.sqlparse.predicates import conjunctive_conditions, statement_where

            counts = {}
            for transaction in workload:
                for statement in transaction.statements:
                    if isinstance(statement, SelectStatement) and statement.tables == (
                        "warehouse",
                    ):
                        for condition in conjunctive_conditions(statement_where(statement)):
                            if condition.column == "w_id":
                                value = condition.candidate_values()[0]
                                counts[value] = counts.get(value, 0) + 1
                        break
            return counts

        histograms = [warehouse_histogram(phase) for phase in bundle.phases]
        hot = [max(counts, key=counts.get) for counts in histograms if counts]
        assert len(hot) == 2
        # The hot warehouse moved between phases (1-indexed: 1 -> 2).
        assert hot[0] == 1 and hot[1] == 2


def test_warehouse_shift_does_not_mutate_caller_config():
    from repro.workloads import TpccConfig, generate_warehouse_shift_tpcc

    config = TpccConfig(warehouses=3, seed=1)
    generate_warehouse_shift_tpcc(
        warehouses=3, transactions_per_phase=20, num_phases=2, config=config
    )
    assert config.home_warehouse_weights is None


def test_warehouse_shift_honors_seed_with_config():
    from repro.workloads import TpccConfig, generate_warehouse_shift_tpcc

    def statements(bundle):
        return [str(s) for phase in bundle.phases for t in phase for s in t.statements]

    a = generate_warehouse_shift_tpcc(
        warehouses=2, transactions_per_phase=30, config=TpccConfig(warehouses=2), seed=7
    )
    b = generate_warehouse_shift_tpcc(
        warehouses=2, transactions_per_phase=30, config=TpccConfig(warehouses=2), seed=8
    )
    assert statements(a) != statements(b)
