"""Tests for predicate evaluation and analysis."""

from repro.sqlparse.ast import (
    And,
    ColumnRef,
    Comparison,
    InsertStatement,
    JoinCondition,
    Or,
    SelectStatement,
    between,
    conj,
    eq,
    in_list,
)
from repro.sqlparse.parser import parse_statement
from repro.sqlparse.predicates import (
    conjunctive_conditions,
    evaluate_predicate,
    referenced_attributes,
)


class TestEvaluate:
    row = {"id": 3, "name": "sam", "bal": 129_000}

    def test_equality(self):
        assert evaluate_predicate(eq("id", 3), self.row)
        assert not evaluate_predicate(eq("id", 4), self.row)

    def test_inequalities(self):
        assert evaluate_predicate(Comparison(ColumnRef("bal"), "<", 200_000), self.row)
        assert evaluate_predicate(Comparison(ColumnRef("bal"), ">=", 129_000), self.row)
        assert not evaluate_predicate(Comparison(ColumnRef("bal"), "<=", 1000), self.row)
        assert evaluate_predicate(Comparison(ColumnRef("id"), "<>", 9), self.row)

    def test_between_and_in(self):
        assert evaluate_predicate(between("id", 1, 5), self.row)
        assert not evaluate_predicate(between("id", 10, 20), self.row)
        assert evaluate_predicate(in_list("id", [1, 3]), self.row)
        assert not evaluate_predicate(in_list("id", [2, 4]), self.row)

    def test_and_or(self):
        predicate = And((eq("id", 3), Comparison(ColumnRef("bal"), ">", 1)))
        assert evaluate_predicate(predicate, self.row)
        predicate = Or((eq("id", 99), eq("name", "sam")))
        assert evaluate_predicate(predicate, self.row)

    def test_missing_column_is_false(self):
        assert not evaluate_predicate(eq("missing", 1), self.row)

    def test_none_predicate_is_true(self):
        assert evaluate_predicate(None, self.row)

    def test_join_condition(self):
        joined = {"a.x": 1, "b.y": 1}
        predicate = JoinCondition(ColumnRef("x", "a"), ColumnRef("y", "b"))
        assert evaluate_predicate(predicate, joined)
        assert not evaluate_predicate(predicate, {"a.x": 1, "b.y": 2})

    def test_qualified_lookup_falls_back_to_bare_name(self):
        predicate = Comparison(ColumnRef("id", "account"), "=", 3)
        assert evaluate_predicate(predicate, self.row)


class TestConjunctiveConditions:
    def test_collects_top_level_and(self):
        predicate = conj(eq("a", 1), eq("b", 2))
        conditions = conjunctive_conditions(predicate)
        assert {(c.column, c.value) for c in conditions} == {("a", 1), ("b", 2)}

    def test_skips_or_branches(self):
        predicate = Or((eq("a", 1), eq("b", 2)))
        assert conjunctive_conditions(predicate) == []

    def test_candidate_values(self):
        conditions = conjunctive_conditions(in_list("a", [1, 2]))
        assert conditions[0].candidate_values() == (1, 2)
        conditions = conjunctive_conditions(Comparison(ColumnRef("a"), ">", 5))
        assert conditions[0].candidate_values() == ()


class TestReferencedAttributes:
    def test_select_where_attributes(self):
        statement = parse_statement("SELECT * FROM stock WHERE s_w_id = 1 AND s_i_id = 5")
        attributes = referenced_attributes(statement)
        assert (None, "s_w_id") in attributes
        assert (None, "s_i_id") in attributes

    def test_insert_contributes_columns(self):
        statement = InsertStatement("t", {"a": 1, "b": 2})
        assert set(referenced_attributes(statement)) == {("t", "a"), ("t", "b")}

    def test_join_contributes_both_sides(self):
        statement = SelectStatement(
            ("a", "b"),
            where=JoinCondition(ColumnRef("x", "a"), ColumnRef("y", "b")),
        )
        attributes = referenced_attributes(statement)
        assert ("a", "x") in attributes
        assert ("b", "y") in attributes
