"""Tests for the SQL parser."""

import pytest

from repro.sqlparse.ast import (
    And,
    Comparison,
    DeleteStatement,
    InsertStatement,
    JoinCondition,
    Or,
    SelectStatement,
    UpdateStatement,
)
from repro.sqlparse.parser import ParseError, parse_statement


class TestSelect:
    def test_simple_select_star(self):
        statement = parse_statement("SELECT * FROM simplecount WHERE id = 7")
        assert isinstance(statement, SelectStatement)
        assert statement.tables == ("simplecount",)
        assert isinstance(statement.where, Comparison)
        assert statement.where.value == 7

    def test_projection_columns(self):
        statement = parse_statement("SELECT id, name FROM account")
        assert [column.name for column in statement.columns] == ["id", "name"]

    def test_between(self):
        statement = parse_statement("SELECT * FROM t WHERE k BETWEEN 5 AND 10")
        assert statement.where.operator == "between"
        assert (statement.where.low, statement.where.high) == (5, 10)

    def test_in_list(self):
        statement = parse_statement("SELECT * FROM account WHERE id IN (1, 3, 5)")
        assert statement.where.operator == "in"
        assert statement.where.values == (1, 3, 5)

    def test_and_or_precedence(self):
        statement = parse_statement("SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3")
        assert isinstance(statement.where, Or)
        assert isinstance(statement.where.children[0], And)

    def test_parentheses(self):
        statement = parse_statement("SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
        assert isinstance(statement.where, And)
        assert isinstance(statement.where.children[1], Or)

    def test_limit(self):
        statement = parse_statement("SELECT * FROM t WHERE a = 1 LIMIT 10")
        assert statement.limit == 10

    def test_order_by_is_ignored(self):
        statement = parse_statement("SELECT * FROM t WHERE a = 1 ORDER BY a DESC LIMIT 5")
        assert statement.limit == 5

    def test_implicit_join(self):
        statement = parse_statement(
            "SELECT * FROM users, reviews WHERE users.u_id = reviews.u_id AND users.u_id = 3"
        )
        assert statement.is_join
        conditions = statement.where.children
        assert any(isinstance(child, JoinCondition) for child in conditions)

    def test_explicit_join_on(self):
        statement = parse_statement(
            "SELECT * FROM users JOIN reviews ON users.u_id = reviews.u_id WHERE users.u_id = 3"
        )
        assert statement.tables == ("users", "reviews")

    def test_string_literal_value(self):
        statement = parse_statement("SELECT * FROM account WHERE name = 'carlo'")
        assert statement.where.value == "carlo"


class TestWriteStatements:
    def test_insert(self):
        statement = parse_statement("INSERT INTO account (id, name, bal) VALUES (6, 'eva', 100)")
        assert isinstance(statement, InsertStatement)
        assert statement.row == {"id": 6, "name": "eva", "bal": 100}

    def test_insert_count_mismatch(self):
        with pytest.raises(ParseError):
            parse_statement("INSERT INTO account (id, name) VALUES (6)")

    def test_update_literal(self):
        statement = parse_statement("UPDATE account SET bal = 500 WHERE id = 2")
        assert isinstance(statement, UpdateStatement)
        assert statement.assignments == {"bal": 500}

    def test_update_delta(self):
        statement = parse_statement("UPDATE account SET bal = bal - 1000 WHERE name = 'carlo'")
        assert statement.assignments == {"bal": ("delta", -1000)}

    def test_update_multiple_assignments(self):
        statement = parse_statement("UPDATE t SET a = 1, b = b + 2 WHERE id = 1")
        assert statement.assignments == {"a": 1, "b": ("delta", 2)}

    def test_delete(self):
        statement = parse_statement("DELETE FROM account WHERE id = 5")
        assert isinstance(statement, DeleteStatement)
        assert statement.where.value == 5


class TestErrors:
    def test_unbound_parameter_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM t WHERE id = ?")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM t WHERE id = 1 garbage")

    def test_trailing_semicolon_accepted(self):
        parse_statement("SELECT * FROM t WHERE id = 1;")

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE TABLE t (id INT)")

    def test_roundtrip_str_reparses(self):
        original = parse_statement("SELECT * FROM account WHERE id IN (1, 3)")
        reparsed = parse_statement(str(original))
        assert reparsed.where.values == (1, 3)
