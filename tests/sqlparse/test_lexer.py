"""Tests for the SQL tokenizer."""

import pytest

from repro.sqlparse.lexer import LexerError, TokenType, tokenize


def kinds(text):
    return [token.token_type for token in tokenize(text)][:-1]


def values(text):
    return [token.value for token in tokenize(text)][:-1]


def test_keywords_are_case_insensitive():
    tokens = tokenize("SELECT * from ACCOUNT")
    assert tokens[0].token_type is TokenType.KEYWORD
    assert tokens[0].value == "select"
    assert tokens[2].token_type is TokenType.KEYWORD
    assert tokens[2].value == "from"


def test_identifiers_preserve_case():
    assert values("SELECT * FROM Account")[-1] == "Account"


def test_numbers_integer_and_float():
    tokens = tokenize("SELECT * FROM t WHERE a = 10 AND b = 2.5")
    numbers = [t.value for t in tokens if t.token_type is TokenType.NUMBER]
    assert numbers == ["10", "2.5"]


def test_negative_number_after_operator():
    tokens = tokenize("UPDATE t SET a = -5 WHERE b = 3")
    numbers = [t.value for t in tokens if t.token_type is TokenType.NUMBER]
    assert "-5" in numbers


def test_string_literals_single_and_double_quotes():
    tokens = tokenize("SELECT * FROM t WHERE name = 'carlo'")
    strings = [t.value for t in tokens if t.token_type is TokenType.STRING]
    assert strings == ["carlo"]
    tokens = tokenize('SELECT * FROM t WHERE name = "evan"')
    strings = [t.value for t in tokens if t.token_type is TokenType.STRING]
    assert strings == ["evan"]


def test_unterminated_string_raises():
    with pytest.raises(LexerError):
        tokenize("SELECT * FROM t WHERE name = 'oops")


def test_parameter_token():
    tokens = tokenize("SELECT * FROM t WHERE id = ?")
    assert any(t.token_type is TokenType.PARAMETER for t in tokens)


def test_multi_character_operators():
    tokens = tokenize("a <= 1 AND b >= 2 AND c <> 3 AND d != 4")
    operators = [t.value for t in tokens if t.token_type is TokenType.OPERATOR]
    assert operators == ["<=", ">=", "<>", "!="]


def test_unexpected_character_raises():
    with pytest.raises(LexerError):
        tokenize("SELECT @ FROM t")


def test_end_token_is_appended():
    tokens = tokenize("SELECT * FROM t")
    assert tokens[-1].token_type is TokenType.END
