"""Docs can't rot silently: the CI docs checks also run under tier-1."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_docs"] = module
    spec.loader.exec_module(module)
    return module


def test_markdown_links_resolve():
    checker = _load_checker()
    assert checker.check_links() == []


def test_doctested_modules_pass():
    checker = _load_checker()
    assert checker.check_doctests() == []


def test_architecture_doc_exists_and_linked():
    architecture = REPO_ROOT / "docs" / "ARCHITECTURE.md"
    assert architecture.exists()
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/ARCHITECTURE.md" in readme
