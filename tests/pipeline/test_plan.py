"""Tests for the PartitionPlan artifact: serialisation, diff, deployment."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.catalog.tuples import TupleId
from repro.core.cost import evaluate_strategy
from repro.core.schism import start_online
from repro.pipeline import (
    PLAN_FORMAT_VERSION,
    PartitionPlan,
    Pipeline,
    PlanFormatError,
    SchismOptions,
)
from repro.utils.rng import SeededRng
from repro.workload.splitter import split_workload
from repro.workloads import generate_simplecount

REPO_ROOT = Path(__file__).resolve().parents[2]


def small_bundle(seed: int = 0):
    return generate_simplecount(num_rows=300, num_transactions=400, num_blocks=5, seed=seed)


def run_pipeline(bundle, num_partitions: int = 4, seed: int = 0):
    train, test = split_workload(bundle.workload, 0.7, rng=SeededRng(seed))
    return Pipeline(SchismOptions(num_partitions=num_partitions)).run(
        bundle.database, train, test
    )


@pytest.fixture(scope="module")
def pipeline_plan():
    bundle = small_bundle()
    run = run_pipeline(bundle)
    return run.plan(workload=bundle.name), run


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------
def test_save_load_round_trip_is_byte_identical(pipeline_plan, tmp_path):
    plan, _run = pipeline_plan
    path = plan.save(tmp_path / "plan.json")
    first_bytes = path.read_bytes()
    reloaded = PartitionPlan.load(path)
    resaved = reloaded.save(tmp_path / "plan2.json")
    assert resaved.read_bytes() == first_bytes
    # And the reloaded plan is semantically identical.
    assert reloaded.num_partitions == plan.num_partitions
    assert reloaded.placements == plan.placements
    assert reloaded.strategy == plan.strategy
    assert reloaded.diff(plan).identical


def test_plan_preserves_key_and_rule_types(tmp_path):
    plan = PartitionPlan(
        3,
        {
            TupleId("users", (1,)): frozenset({0}),
            TupleId("users", ("alice",)): frozenset({1, 2}),
            TupleId("ratings", (1, "x")): frozenset({2}),
            TupleId("scores", (2.5,)): frozenset({0}),
        },
    )
    reloaded = PartitionPlan.loads(plan.dumps())
    assert reloaded.placements == plan.placements
    for tuple_id in reloaded.placements:
        match = [t for t in plan.placements if t == tuple_id]
        assert len(match) == 1
        # Types survive exactly: 1 stays int, "alice" stays str, 2.5 stays float.
        assert [type(v) for v in match[0].key] == [type(v) for v in tuple_id.key]


def test_plan_rejects_unserialisable_keys():
    plan = PartitionPlan(2, {TupleId("users", ((1, 2),)): frozenset({0})})
    with pytest.raises(TypeError):
        plan.dumps()


def test_plan_validation_errors():
    with pytest.raises(ValueError):
        PartitionPlan(0, {})
    with pytest.raises(ValueError):
        PartitionPlan(2, {}, strategy="bogus")
    with pytest.raises(ValueError):
        PartitionPlan(2, {TupleId("t", (1,)): frozenset({5})})
    with pytest.raises(ValueError):
        PartitionPlan(2, {TupleId("t", (1,)): frozenset()})


def test_format_and_version_guards(pipeline_plan):
    plan, _run = pipeline_plan
    payload = plan.to_payload()
    payload["format"] = "something-else"
    with pytest.raises(PlanFormatError):
        PartitionPlan.from_payload(payload)
    payload = plan.to_payload()
    payload["version"] = PLAN_FORMAT_VERSION + 1
    with pytest.raises(PlanFormatError):
        PartitionPlan.from_payload(payload)


def test_provenance_records_all_five_phase_timings(pipeline_plan):
    plan, _run = pipeline_plan
    timings = plan.provenance.timings
    for phase in ("extraction", "graph_build", "partitioning", "explanation", "validation"):
        assert phase in timings
    assert timings["total"] == pytest.approx(
        sum(seconds for phase, seconds in timings.items() if phase != "total")
    )
    assert "extraction" in plan.provenance.describe() or "timings" in plan.provenance.describe()


# ---------------------------------------------------------------------------
# Strategy reconstruction and diff
# ---------------------------------------------------------------------------
def test_rebuilt_strategies_score_identically(pipeline_plan):
    plan, run = pipeline_plan
    validation = run.state.validation
    test_trace = run.state.test_trace
    database = run.state.database
    for name in validation.reports:
        if name == "attribute-hashing":
            continue  # simplecount has no hash columns
        rebuilt = plan.build_strategy(name)
        fraction = evaluate_strategy(rebuilt, test_trace, database).distributed_fraction
        assert fraction == pytest.approx(validation.reports[name].distributed_fraction)


def test_diff_reports_moves_replicas_and_strategy_changes():
    base = PartitionPlan(
        2,
        {
            TupleId("t", (1,)): frozenset({0}),
            TupleId("t", (2,)): frozenset({0}),
            TupleId("t", (3,)): frozenset({1}),
        },
    )
    changed = PartitionPlan(
        4,
        {
            TupleId("t", (1,)): frozenset({1}),        # moved
            TupleId("t", (2,)): frozenset({0, 1}),     # replicated
            TupleId("t", (4,)): frozenset({3}),        # new tuple
        },
        strategy="hashing",
    )
    diff = base.diff(changed)
    assert not diff.identical
    assert diff.tuples_moved == 2
    assert diff.replicas_added == 2  # t:1 gained {1}, t:2 gained {1}
    assert diff.replicas_dropped == 1  # t:1 lost {0}
    assert [t.key for t in diff.only_in_old] == [(3,)]
    assert [t.key for t in diff.only_in_new] == [(4,)]
    assert diff.strategy_change == ("lookup-table", "hashing")
    assert diff.partitions_change == (2, 4)
    text = diff.describe()
    assert "tuples moved: 2" in text and "strategy changed" in text
    assert base.diff(base).describe() == "plans are identical: 0 moves"


def test_diff_catches_policy_and_rule_set_changes():
    """Plans with identical placements but different routing config must not
    diff as identical (the --fail-on-change CI gate relies on this)."""
    from repro.explain.rules import PredicateRule, RuleCondition, RuleSet

    placements = {TupleId("t", (1,)): frozenset({0})}
    base = PartitionPlan(2, dict(placements))
    policy_flip = PartitionPlan(2, dict(placements), lookup_default_policy="replicate")
    diff = base.diff(policy_flip)
    assert not diff.identical
    assert diff.policy_changes == {"lookup_default_policy": ("hash", "replicate")}
    assert "lookup_default_policy changed" in diff.describe()

    rules_a = {
        "t": RuleSet(
            "t",
            (PredicateRule((RuleCondition("id", "<=", 5),), "0"),),
            default_label="1",
            attributes=("id",),
        )
    }
    rules_b = {
        "t": RuleSet(
            "t",
            (PredicateRule((RuleCondition("id", "<=", 5),), "1"),),
            default_label="0",
            attributes=("id",),
        )
    }
    with_rules_a = PartitionPlan(2, dict(placements), rule_sets=rules_a)
    with_rules_b = PartitionPlan(2, dict(placements), rule_sets=rules_b)
    diff = with_rules_a.diff(with_rules_b)
    assert not diff.identical
    assert diff.rules_changed == ("t",)
    assert "rule sets changed" in diff.describe()
    assert with_rules_a.diff(with_rules_a).identical


# ---------------------------------------------------------------------------
# Deployment: save -> load -> deploy must not change a routing decision
# ---------------------------------------------------------------------------
def test_loaded_plan_deploys_with_zero_routing_divergence(pipeline_plan, tmp_path):
    plan, _run = pipeline_plan
    path = plan.save(tmp_path / "plan.json")
    loaded = PartitionPlan.load(path)

    # Two fresh, identical database instances; one controller per plan.
    bundle_a = small_bundle()
    bundle_b = small_bundle()
    controller_a = start_online(plan, bundle_a.database)
    controller_b = start_online(loaded, bundle_b.database)

    decisions_a = controller_a.router.participants_for_workload(bundle_a.workload)
    decisions_b = controller_b.router.participants_for_workload(bundle_b.workload)
    assert decisions_a == decisions_b
    assert controller_a.cluster.row_counts() == controller_b.cluster.row_counts()


def test_cold_deploy_does_not_read_steady_traffic_as_drift(pipeline_plan):
    """A plan deployed without a warm-up trace adopts its first filled window
    as the drift baseline instead of churning adaptations against zeros."""
    plan, _run = pipeline_plan
    bundle = small_bundle()
    from repro.online.controller import OnlineOptions
    from repro.online.monitor import MonitorOptions
    from repro.workload.rwsets import extract_access_trace

    # Simplecount traffic is uniform, so the "hot set" is sampling noise;
    # disable the churn check to isolate the distributed-fraction baseline
    # (the signal an all-zero baseline would trip on every batch).  The
    # window is sized so the 400-transaction stream fills it.
    options = OnlineOptions(
        monitor=MonitorOptions(window_size=200, drift_churn_threshold=1.1)
    )
    controller = start_online(plan, bundle.database, options)
    trace = extract_access_trace(bundle.database, bundle.workload)
    observation = controller.observe(trace, auto_adapt=True)
    assert observation.adaptations == []
    adopted = [
        report
        for report in observation.drift_reports
        if "baseline adopted" in " ".join(report.reasons)
    ]
    assert adopted, "first filled window should have re-baselined the monitor"


def test_export_plan_closes_the_loop(pipeline_plan):
    plan, _run = pipeline_plan
    bundle = small_bundle()
    controller = start_online(plan, bundle.database)
    exported = controller.export_plan()
    # Nothing adapted yet: the exported plan is identical to the deployed
    # one — the routing config (strategy, policies, rule sets) is carried
    # through the deploy/export cycle, not just the placements.
    assert plan.diff(exported).identical
    assert exported.strategy == plan.strategy
    assert exported.rule_sets.keys() == plan.rule_sets.keys()
    assert exported.provenance.created_by == "online-export"
    # The exported plan is itself serialisable and redeployable.
    round_tripped = PartitionPlan.loads(exported.dumps())
    fresh = small_bundle()
    controller2 = start_online(round_tripped, fresh.database)
    assert controller2.num_partitions == controller.num_partitions


# ---------------------------------------------------------------------------
# Cross-process / cross-backend determinism
# ---------------------------------------------------------------------------
_FINGERPRINT_SCRIPT = """
from repro.pipeline import PartitionPlan, Pipeline, SchismOptions
from repro.utils.rng import SeededRng
from repro.workload.splitter import split_workload
from repro.workloads import generate_simplecount

bundle = generate_simplecount(num_rows=300, num_transactions=400, num_blocks=5, seed=0)
train, test = split_workload(bundle.workload, 0.7, rng=SeededRng(0))
run = Pipeline(SchismOptions(num_partitions=4)).run(bundle.database, train, test)
plan = run.plan(workload=bundle.name)
text = plan.dumps()
assert PartitionPlan.loads(text).dumps() == text, "round-trip not byte-identical"
print(plan.content_fingerprint())
"""


def _subprocess_fingerprint(backend: str) -> str:
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_ARRAY_BACKEND"] = backend
    env.pop("PYTHONHASHSEED", None)  # fresh salted hashing per process
    result = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout.strip()


def test_plan_is_byte_deterministic_across_processes_and_backends(pipeline_plan):
    plan, _run = pipeline_plan
    try:
        import numpy  # noqa: F401

        backends = ("numpy", "list")
    except ImportError:
        backends = ("list", "list")
    fingerprints = [_subprocess_fingerprint(backend) for backend in backends]
    # Both backends, in fresh processes, produce the same decision content
    # as the in-process run (provenance timings excluded by construction).
    assert fingerprints[0] == fingerprints[1] == plan.content_fingerprint()


def test_dumps_is_valid_sorted_json(pipeline_plan):
    plan, _run = pipeline_plan
    payload = json.loads(plan.dumps())
    assert payload["format"] == "repro-partition-plan"
    assert payload["version"] == PLAN_FORMAT_VERSION
    tables = [entry[0] for entry in payload["placements"]]
    assert tables == sorted(tables)
