"""Tests for the staged pipeline: run/stop/inject/resume/re-run semantics."""

import pytest

from repro.core.schism import Schism, run_schism
from repro.engine.database import Database
from repro.pipeline import (
    Pipeline,
    PipelineError,
    SchismOptions,
    STAGE_NAMES,
)
from repro.sqlparse.ast import SelectStatement, in_list
from repro.utils.rng import SeededRng
from repro.workload.rwsets import extract_access_trace
from repro.workload.trace import Workload


def clustered_workload(
    num_rows_per_cluster: int = 50, num_clusters: int = 2, transactions: int = 200
) -> Workload:
    """Transactions touch pairs of accounts from the same hidden cluster."""
    rng = SeededRng(0)
    workload = Workload("clustered")
    for _ in range(transactions):
        cluster = rng.randint(0, num_clusters - 1)
        base = cluster * num_rows_per_cluster
        first = base + rng.randint(0, num_rows_per_cluster - 1)
        second = base + rng.randint(0, num_rows_per_cluster - 1)
        workload.add_statements(
            [SelectStatement(("account",), where=in_list("id", sorted({first, second})))]
        )
    return workload


@pytest.fixture
def clustered_database(bank_schema):
    database = Database(bank_schema)
    for account_id in range(100):
        database.insert_row(
            "account", {"id": account_id, "name": f"user{account_id}", "bal": 0}
        )
    return database


def test_stage_names_are_the_five_paper_phases():
    assert STAGE_NAMES == ("extract", "build_graph", "partition", "explain", "validate")


def test_full_run_produces_all_artifacts(clustered_database):
    run = Pipeline(SchismOptions(num_partitions=2)).run(
        clustered_database, clustered_workload()
    )
    assert run.complete
    state = run.state
    assert state.completed == list(STAGE_NAMES)
    assert state.training_trace is not None and state.test_trace is not None
    assert state.tuple_graph is not None and state.assignment is not None
    assert state.explanation is not None and state.validation is not None
    assert state.graph_cut is not None and state.graph_cut >= 0
    assert state.timings.total > 0
    assert run.recommendation in ("range-predicates", "lookup-table")
    assert "selected" in run.describe()


def test_stop_after_partition_leaves_later_stages_unrun(clustered_database):
    pipeline = Pipeline(SchismOptions(num_partitions=2))
    run = pipeline.run(clustered_database, clustered_workload(), stop_after="partition")
    assert not run.complete
    assert run.state.assignment is not None
    assert run.state.explanation is None
    assert run.state.validation is None
    assert run.state.completed == ["extract", "build_graph", "partition"]
    with pytest.raises(PipelineError):
        run.plan()
    # Resuming finishes only the remaining stages.
    resumed = pipeline.resume(run.state)
    assert resumed.complete
    assert resumed.state.completed == list(STAGE_NAMES)


def test_unknown_stop_stage_is_rejected(clustered_database):
    with pytest.raises(ValueError):
        Pipeline(SchismOptions(num_partitions=2)).run(
            clustered_database, clustered_workload(transactions=10), stop_after="bogus"
        )


def test_injected_trace_skips_extraction(clustered_database):
    workload = clustered_workload()
    trace = extract_access_trace(clustered_database, workload)
    pipeline = Pipeline(SchismOptions(num_partitions=2))
    run = pipeline.run(
        clustered_database, workload, training_trace=trace, test_trace=trace
    )
    assert run.complete
    # The extract stage was satisfied by the injected artifacts, not executed.
    assert "extract" not in run.state.completed
    assert run.state.training_trace is trace
    assert run.state.test_trace is trace
    # Injecting only the training trace still runs extract (the test trace
    # must be resolved), but reuses the injected artifact for training.
    partial = pipeline.run(clustered_database, workload, training_trace=trace)
    assert "extract" in partial.state.completed
    assert partial.state.training_trace is trace
    assert partial.state.test_trace is trace


def test_injected_tuple_graph_skips_graph_build(clustered_database):
    workload = clustered_workload()
    pipeline = Pipeline(SchismOptions(num_partitions=2))
    first = pipeline.run(clustered_database, workload, stop_after="build_graph")
    cached_graph = first.state.tuple_graph
    run = pipeline.run(clustered_database, workload, tuple_graph=cached_graph)
    assert run.complete
    assert "build_graph" not in run.state.completed
    assert run.state.tuple_graph is cached_graph


def test_rerun_single_stage_with_changed_options(clustered_database):
    workload = clustered_workload()
    run = Pipeline(SchismOptions(num_partitions=2)).run(clustered_database, workload)
    old_assignment = run.state.assignment
    # Re-partition the same cached graph at k=4: downstream artifacts are
    # invalidated, upstream artifacts are reused.
    retuned = Pipeline(SchismOptions(num_partitions=4))
    state = retuned.run_stage("partition", run.state)
    assert state.assignment is not None and state.assignment is not old_assignment
    assert state.assignment.num_partitions == 4
    assert state.explanation is None and state.validation is None
    assert state.tuple_graph is run.state.tuple_graph
    final = retuned.resume(state)
    assert final.complete
    assert final.plan().num_partitions == 4


def test_plan_refuses_stale_artifacts_from_other_options(clustered_database):
    """Resuming a finished k=2 state under k=8 options skips every stage; the
    plan build must reject the mismatch instead of stamping the wrong k."""
    run = Pipeline(SchismOptions(num_partitions=2)).run(
        clustered_database, clustered_workload()
    )
    stale = Pipeline(SchismOptions(num_partitions=8)).resume(run.state)
    with pytest.raises(PipelineError, match="re-run the partition stage"):
        stale.plan()


def test_missing_inputs_raise_pipeline_error(clustered_database):
    pipeline = Pipeline(SchismOptions(num_partitions=2))
    state = pipeline.new_state(clustered_database)
    # No workload and no injected trace: extraction cannot run.
    with pytest.raises(PipelineError):
        pipeline.resume(state)
    # Partition without a graph: required input missing.
    with pytest.raises(PipelineError):
        pipeline.run_stage("partition", pipeline.new_state(clustered_database))


def test_options_validation_rejects_bad_range_fallback():
    with pytest.raises(ValueError):
        SchismOptions(num_partitions=2, range_fallback="bogus")
    with pytest.raises(ValueError):
        SchismOptions(num_partitions=2, lookup_default_policy="bogus")
    with pytest.raises(ValueError):
        SchismOptions(num_partitions=0)


def test_schism_shim_matches_pipeline_and_warns(clustered_database):
    workload = clustered_workload()
    options = SchismOptions(num_partitions=2)
    run = Pipeline(options).run(clustered_database, workload)
    with pytest.warns(DeprecationWarning):
        result = Schism(options).run(clustered_database, workload)
    assert result.recommendation == run.recommendation
    assert result.assignment.placements == run.state.assignment.placements
    assert result.graph_cut == run.state.graph_cut
    # The legacy describe() now reports all five phases, extraction included.
    assert "extract" in result.describe()
    assert result.timings.total >= result.timings.extraction > 0.0


def test_run_schism_shim_warns_once(clustered_database):
    with pytest.warns(DeprecationWarning) as records:
        result = run_schism(
            clustered_database, clustered_workload(transactions=100), num_partitions=2
        )
    assert result.options.num_partitions == 2
    deprecations = [
        record for record in records if record.category is DeprecationWarning
    ]
    assert len(deprecations) == 1


def test_result_to_plan_round_trips_the_decision(clustered_database):
    options = SchismOptions(num_partitions=2)
    run = Pipeline(options).run(clustered_database, clustered_workload())
    plan_via_result = Schism(options).run(
        clustered_database, clustered_workload()
    ).to_plan()
    plan = run.plan()
    assert plan.content_fingerprint() == plan_via_result.content_fingerprint()
