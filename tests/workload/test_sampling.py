"""Tests for the graph-size reduction heuristics."""

import pytest

from repro.catalog.tuples import TupleId
from repro.sqlparse.ast import SelectStatement, eq
from repro.utils.rng import SeededRng
from repro.workload.rwsets import AccessTrace, access_from_tuple_sets
from repro.workload.sampling import (
    filter_blanket_statements,
    filter_rare_tuples,
    sample_transactions,
    sample_tuples,
)
from repro.workload.trace import Transaction


def make_trace(num_transactions: int = 20, tuples_per_transaction: int = 3) -> AccessTrace:
    trace = AccessTrace("synthetic")
    for index in range(num_transactions):
        statement = SelectStatement(("t",), where=eq("id", index))
        transaction = Transaction((statement,), transaction_id=index)
        read = [TupleId("t", (index * tuples_per_transaction + offset,)) for offset in range(tuples_per_transaction)]
        trace.accesses.append(access_from_tuple_sets(transaction, read))
    return trace


def test_sample_transactions_reduces_count():
    trace = make_trace(100)
    sampled = sample_transactions(trace, 0.3, SeededRng(1))
    assert 10 <= len(sampled) <= 60
    assert len(sampled) < len(trace)


def test_sample_transactions_full_fraction_is_identity():
    trace = make_trace(10)
    assert len(sample_transactions(trace, 1.0)) == 10


def test_sample_transactions_never_empty():
    trace = make_trace(3)
    sampled = sample_transactions(trace, 0.0001, SeededRng(0))
    assert len(sampled) >= 1


def test_invalid_fraction_rejected():
    trace = make_trace(3)
    with pytest.raises(ValueError):
        sample_transactions(trace, 0.0)
    with pytest.raises(ValueError):
        sample_tuples(trace, 1.5)


def test_sample_tuples_restricts_tuple_set():
    trace = make_trace(50)
    sampled = sample_tuples(trace, 0.3, SeededRng(2))
    assert sampled.all_tuples() < trace.all_tuples()


def test_filter_blanket_statements_drops_wide_statements():
    trace = AccessTrace("blanket")
    wide_statement = SelectStatement(("t",))
    narrow_statement = SelectStatement(("t",), where=eq("id", 1))
    transaction = Transaction((wide_statement, narrow_statement))
    from repro.workload.trace import StatementAccess, TransactionAccess

    wide_access = StatementAccess(
        wide_statement, frozenset(TupleId("t", (i,)) for i in range(100)), frozenset()
    )
    narrow_access = StatementAccess(narrow_statement, frozenset({TupleId("t", (1,))}), frozenset())
    trace.accesses.append(TransactionAccess(transaction, (wide_access, narrow_access)))
    filtered = filter_blanket_statements(trace, max_tuples_per_statement=10)
    assert len(filtered) == 1
    assert filtered.accesses[0].touched == {TupleId("t", (1,))}


def test_filter_rare_tuples():
    trace = AccessTrace("rare")
    hot = TupleId("t", (1,))
    for index in range(5):
        statement = SelectStatement(("t",), where=eq("id", 1))
        trace.accesses.append(
            access_from_tuple_sets(
                Transaction((statement,), transaction_id=index),
                [hot, TupleId("t", (100 + index,))],
            )
        )
    filtered = filter_rare_tuples(trace, min_access_count=2)
    assert filtered.all_tuples() == {hot}


def test_filter_rare_tuples_disabled_for_threshold_one():
    trace = make_trace(5)
    assert len(filter_rare_tuples(trace, 1).all_tuples()) == len(trace.all_tuples())
