"""Tests for workload trace types."""

import pytest

from repro.catalog.tuples import TupleId
from repro.sqlparse.ast import SelectStatement, UpdateStatement, eq
from repro.workload.trace import StatementAccess, Transaction, TransactionAccess, Workload


def make_access() -> TransactionAccess:
    select = SelectStatement(("t",), where=eq("id", 1))
    update = UpdateStatement("t", {"v": 1}, where=eq("id", 2))
    transaction = Transaction((select, update))
    return TransactionAccess(
        transaction,
        (
            StatementAccess(select, frozenset({TupleId("t", (1,))}), frozenset()),
            StatementAccess(update, frozenset(), frozenset({TupleId("t", (2,))})),
        ),
    )


def test_transaction_requires_statements():
    with pytest.raises(ValueError):
        Transaction(())


def test_transaction_read_only():
    read_only = Transaction((SelectStatement(("t",), where=eq("id", 1)),))
    assert read_only.is_read_only
    writer = Transaction((UpdateStatement("t", {"v": 1}, where=eq("id", 1)),))
    assert not writer.is_read_only


def test_workload_add_statements_assigns_ids():
    workload = Workload("w")
    first = workload.add_statements([SelectStatement(("t",), where=eq("id", 1))])
    second = workload.add_statements([SelectStatement(("t",), where=eq("id", 2))])
    assert first.transaction_id == 0
    assert second.transaction_id == 1
    assert len(workload) == 2


def test_transaction_access_aggregates_sets():
    access = make_access()
    assert access.read_set == {TupleId("t", (1,))}
    assert access.write_set == {TupleId("t", (2,))}
    assert access.touched == {TupleId("t", (1,)), TupleId("t", (2,))}


def test_without_statements():
    access = make_access()
    reduced = access.without_statements({1})
    assert reduced.write_set == frozenset()
    assert reduced.read_set == {TupleId("t", (1,))}


def test_restricted_to():
    access = make_access()
    restricted = access.restricted_to({TupleId("t", (2,))})
    assert restricted.read_set == frozenset()
    assert restricted.write_set == {TupleId("t", (2,))}
