"""Tests for workload trace types."""

import pytest

from repro.catalog.tuples import TupleId
from repro.sqlparse.ast import SelectStatement, UpdateStatement, eq
from repro.workload.trace import StatementAccess, Transaction, TransactionAccess, Workload


def make_access() -> TransactionAccess:
    select = SelectStatement(("t",), where=eq("id", 1))
    update = UpdateStatement("t", {"v": 1}, where=eq("id", 2))
    transaction = Transaction((select, update))
    return TransactionAccess(
        transaction,
        (
            StatementAccess(select, frozenset({TupleId("t", (1,))}), frozenset()),
            StatementAccess(update, frozenset(), frozenset({TupleId("t", (2,))})),
        ),
    )


def test_transaction_requires_statements():
    with pytest.raises(ValueError):
        Transaction(())


def test_transaction_read_only():
    read_only = Transaction((SelectStatement(("t",), where=eq("id", 1)),))
    assert read_only.is_read_only
    writer = Transaction((UpdateStatement("t", {"v": 1}, where=eq("id", 1)),))
    assert not writer.is_read_only


def test_workload_add_statements_assigns_ids():
    workload = Workload("w")
    first = workload.add_statements([SelectStatement(("t",), where=eq("id", 1))])
    second = workload.add_statements([SelectStatement(("t",), where=eq("id", 2))])
    assert first.transaction_id == 0
    assert second.transaction_id == 1
    assert len(workload) == 2


def test_transaction_access_aggregates_sets():
    access = make_access()
    assert access.read_set == {TupleId("t", (1,))}
    assert access.write_set == {TupleId("t", (2,))}
    assert access.touched == {TupleId("t", (1,)), TupleId("t", (2,))}


def test_without_statements():
    access = make_access()
    reduced = access.without_statements({1})
    assert reduced.write_set == frozenset()
    assert reduced.read_set == {TupleId("t", (1,))}


def test_restricted_to():
    access = make_access()
    restricted = access.restricted_to({TupleId("t", (2,))})
    assert restricted.read_set == frozenset()
    assert restricted.write_set == {TupleId("t", (2,))}


def test_iter_chunks_preserves_order_and_sizes():
    from repro.workload.trace import iter_chunks

    chunks = list(iter_chunks(range(7), 3))
    assert chunks == [[0, 1, 2], [3, 4, 5], [6]]
    # Works on a generator (a live stream) too.
    chunks = list(iter_chunks((i for i in range(4)), 2))
    assert chunks == [[0, 1], [2, 3]]
    assert list(iter_chunks([], 3)) == []
    with pytest.raises(ValueError):
        list(iter_chunks([1], 0))


def test_workload_iter_batches():
    select = SelectStatement(("t",), where=eq("id", 1))
    workload = Workload("w")
    for _ in range(5):
        workload.add_statements([select])
    batches = list(workload.iter_batches(2))
    assert [len(batch) for batch in batches] == [2, 2, 1]
    assert [t for batch in batches for t in batch] == workload.transactions


def test_access_trace_iter_batches():
    from repro.workload.rwsets import AccessTrace

    trace = AccessTrace("w", [make_access() for _ in range(5)])
    batches = list(trace.iter_batches(3))
    assert [len(batch) for batch in batches] == [3, 2]
    assert [a for batch in batches for a in batch] == trace.accesses
