"""Tests for workload analysis."""

from repro.sqlparse.ast import InsertStatement, SelectStatement, UpdateStatement, conj, eq
from repro.workload.analysis import frequent_attributes, workload_statistics
from repro.workload.trace import Workload


def make_workload() -> Workload:
    workload = Workload("analysis")
    for index in range(8):
        workload.add_statements(
            [SelectStatement(("stock",), where=conj(eq("s_w_id", 1), eq("s_i_id", index)))]
        )
    for index in range(2):
        workload.add_statements(
            [SelectStatement(("stock",), where=eq("s_quantity", index))]
        )
    workload.add_statements([InsertStatement("stock", {"s_w_id": 1, "s_i_id": 99, "s_quantity": 5})])
    return workload


def test_frequent_attributes_orders_by_occurrence():
    frequents = frequent_attributes(make_workload(), {"stock": ("s_w_id", "s_i_id", "s_quantity")})
    stock = frequents["stock"]
    columns = [item.column for item in stock]
    assert columns[0] in ("s_w_id", "s_i_id")
    assert all(item.frequency > 0 for item in stock)


def test_min_frequency_filters_rare_attributes():
    frequents = frequent_attributes(
        make_workload(), {"stock": ("s_w_id", "s_i_id", "s_quantity")}, min_frequency=0.5
    )
    columns = {item.column for item in frequents["stock"]}
    assert "s_quantity" not in columns
    assert "s_w_id" in columns


def test_unqualified_single_table_resolution():
    workload = Workload("w")
    workload.add_statements([SelectStatement(("t",), where=eq("a", 1))])
    frequents = frequent_attributes(workload)
    assert "t" in frequents
    assert frequents["t"][0].column == "a"


def test_workload_statistics():
    workload = Workload("stats")
    workload.add_statements(
        [
            SelectStatement(("t",), where=eq("id", 1)),
            UpdateStatement("t", {"v": 1}, where=eq("id", 1)),
        ]
    )
    workload.add_statements([InsertStatement("t", {"id": 2, "v": 0})])
    stats = workload_statistics(workload)
    assert stats.transaction_count == 2
    assert stats.statement_count == 3
    assert stats.write_statement_count == 2
    assert stats.insert_count == 1
    assert 0 < stats.write_fraction < 1
    assert stats.tables_touched["t"] == 3
