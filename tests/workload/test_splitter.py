"""Tests for train/test splitting."""

import pytest

from repro.sqlparse.ast import SelectStatement, eq
from repro.utils.rng import SeededRng
from repro.workload.splitter import split_workload
from repro.workload.trace import Workload


def make_workload(count: int = 20) -> Workload:
    workload = Workload("w")
    for index in range(count):
        workload.add_statements([SelectStatement(("t",), where=eq("id", index))])
    return workload


def test_split_sizes():
    train, test = split_workload(make_workload(20), 0.7, SeededRng(0))
    assert len(train) == 14
    assert len(test) == 6


def test_split_is_a_partition_of_transactions():
    workload = make_workload(30)
    train, test = split_workload(workload, 0.5, SeededRng(1))
    train_ids = {transaction.transaction_id for transaction in train}
    test_ids = {transaction.transaction_id for transaction in test}
    assert train_ids | test_ids == {t.transaction_id for t in workload}
    assert not train_ids & test_ids


def test_split_deterministic_for_same_seed():
    first_train, _ = split_workload(make_workload(30), 0.7, SeededRng(5))
    second_train, _ = split_workload(make_workload(30), 0.7, SeededRng(5))
    assert [t.transaction_id for t in first_train] == [t.transaction_id for t in second_train]


def test_no_shuffle_prefix_split():
    train, test = split_workload(make_workload(10), 0.7, shuffle=False)
    assert [t.transaction_id for t in train] == list(range(7))
    assert [t.transaction_id for t in test] == list(range(7, 10))


def test_invalid_fraction():
    with pytest.raises(ValueError):
        split_workload(make_workload(10), 1.0)


def test_stream_workload_chunks_share_the_batch_code_path():
    from repro.workload.splitter import stream_workload
    from repro.workload.trace import iter_chunks

    workload = make_workload(7)
    chunks = list(stream_workload(workload, 3))
    assert [len(chunk) for chunk in chunks] == [3, 3, 1]
    assert [chunk.name for chunk in chunks] == ["w-batch0", "w-batch1", "w-batch2"]
    # Identical chunking to the shared primitive, transaction for transaction.
    raw = list(iter_chunks(workload.transactions, 3))
    assert [chunk.transactions for chunk in chunks] == raw
