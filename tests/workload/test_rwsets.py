"""Tests for read/write-set extraction."""

from repro.catalog.tuples import TupleId
from repro.workload.rwsets import extract_access_trace


def test_extraction_matches_figure2(bank_database, bank_workload):
    trace = extract_access_trace(bank_database, bank_workload)
    assert len(trace) == 4
    transfer = trace.accesses[0]
    assert transfer.write_set == {TupleId("account", (1,)), TupleId("account", (2,))}
    read_pair = trace.accesses[1]
    assert read_pair.read_set == {TupleId("account", (1,)), TupleId("account", (3,))}
    mixed = trace.accesses[2]
    assert mixed.write_set == {TupleId("account", (2,))}
    assert mixed.read_set == {TupleId("account", (5,))}


def test_access_counts_and_write_counts(bank_database, bank_workload):
    trace = extract_access_trace(bank_database, bank_workload)
    counts = trace.access_counts()
    # Tuple 1 (carlo) is accessed by three transactions in the running example.
    assert counts[TupleId("account", (1,))] == 3
    writes = trace.write_counts()
    assert writes[TupleId("account", (1,))] == 2


def test_all_tuples(bank_database, bank_workload):
    trace = extract_access_trace(bank_database, bank_workload)
    assert len(trace.all_tuples()) == 5


def test_skip_empty_transactions(bank_database, bank_workload):
    from repro.sqlparse.ast import SelectStatement, eq

    bank_workload.add_statements([SelectStatement(("account",), where=eq("id", 999))])
    trace = extract_access_trace(bank_database, bank_workload, skip_empty=True)
    assert len(trace) == 4
