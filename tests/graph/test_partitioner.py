"""Tests for the multilevel k-way partitioner."""

from collections import Counter

import pytest

from repro.graph.model import Graph
from repro.graph.partitioner import (
    GraphPartitioner,
    PartitionerOptions,
    cut_weight,
    partition_graph,
    partition_weights,
)
from repro.graph.refine import fm_refine_bisection, greedy_kway_refine, rebalance
from repro.utils.rng import SeededRng


def clusters_graph(num_clusters: int, cluster_size: int, intra_weight: float = 5.0) -> Graph:
    """Ring of dense clusters connected by single light edges."""
    graph = Graph()
    graph.add_nodes(num_clusters * cluster_size)
    for cluster in range(num_clusters):
        base = cluster * cluster_size
        for i in range(cluster_size):
            for j in range(i + 1, cluster_size):
                graph.add_edge(base + i, base + j, intra_weight)
        graph.add_edge(base, ((cluster + 1) % num_clusters) * cluster_size, 1.0)
    return graph


class TestPartitioner:
    def test_single_partition(self):
        graph = clusters_graph(2, 5)
        assert partition_graph(graph, 1) == [0] * graph.num_nodes

    def test_empty_graph(self):
        assert partition_graph(Graph(), 4) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            partition_graph(clusters_graph(2, 4), 0)

    def test_two_clusters_recovered(self):
        graph = clusters_graph(2, 20)
        assignment = partition_graph(graph, 2, PartitionerOptions(seed=1))
        first = set(assignment[:20])
        second = set(assignment[20:])
        assert len(first) == 1 and len(second) == 1 and first != second
        assert cut_weight(graph, assignment) == 2.0  # the two ring edges

    def test_four_way_ring_of_cliques(self):
        graph = clusters_graph(4, 10)
        assignment = partition_graph(graph, 4, PartitionerOptions(seed=2))
        sizes = Counter(assignment)
        assert len(sizes) == 4
        assert max(sizes.values()) <= 12
        assert cut_weight(graph, assignment) <= 6.0

    def test_balance_constraint_respected(self):
        graph = clusters_graph(4, 10)
        options = PartitionerOptions(seed=0, imbalance=0.05)
        assignment = GraphPartitioner(options).partition(graph, 4)
        weights = partition_weights(graph, assignment, 4)
        ideal = graph.total_node_weight() / 4
        max_node = max(graph.node_weights)
        assert max(weights) <= ideal * 1.05 + max_node + 1e-9

    def test_odd_partition_count(self):
        graph = clusters_graph(3, 12)
        assignment = partition_graph(graph, 3, PartitionerOptions(seed=4))
        sizes = Counter(assignment)
        assert len(sizes) == 3
        assert max(sizes.values()) - min(sizes.values()) <= 6

    def test_weighted_nodes_balance_by_weight(self):
        graph = Graph()
        graph.add_nodes(10, weight=1.0)
        graph.add_nodes(10, weight=3.0)
        for i in range(19):
            graph.add_edge(i, i + 1, 1.0)
        assignment = partition_graph(graph, 2, PartitionerOptions(seed=0))
        weights = partition_weights(graph, assignment, 2)
        assert abs(weights[0] - weights[1]) <= 6.0 + 1e-9

    def test_deterministic_for_fixed_seed(self):
        graph = clusters_graph(2, 15)
        first = partition_graph(graph, 2, PartitionerOptions(seed=7))
        second = partition_graph(graph, 2, PartitionerOptions(seed=7))
        assert first == second

    def test_disconnected_graph(self):
        graph = Graph()
        graph.add_nodes(40)
        for i in range(0, 40, 2):
            graph.add_edge(i, i + 1, 1.0)
        assignment = partition_graph(graph, 4, PartitionerOptions(seed=0))
        sizes = Counter(assignment)
        assert len(sizes) == 4
        assert max(sizes.values()) <= 14

    def test_more_partitions_than_clusters_still_valid(self):
        graph = clusters_graph(2, 6)
        assignment = partition_graph(graph, 4, PartitionerOptions(seed=0))
        assert set(assignment) <= {0, 1, 2, 3}
        assert len(assignment) == graph.num_nodes


class TestRefinement:
    def test_fm_improves_bad_bisection(self):
        graph = clusters_graph(2, 10)
        # Deliberately interleave the two clusters.
        assignment = [node % 2 for node in range(graph.num_nodes)]
        before = cut_weight(graph, assignment)
        total = graph.total_node_weight()
        fm_refine_bisection(graph, assignment, (total * 0.6, total * 0.6), max_passes=6)
        after = cut_weight(graph, assignment)
        assert after < before

    def test_greedy_kway_refine_does_not_violate_balance(self):
        graph = clusters_graph(4, 8)
        assignment = [node % 4 for node in range(graph.num_nodes)]
        max_weights = [graph.total_node_weight() / 4 * 1.3] * 4
        before = cut_weight(graph, assignment)
        greedy_kway_refine(graph, assignment, 4, max_weights)
        weights = partition_weights(graph, assignment, 4)
        assert max(weights) <= max_weights[0] + 1e-9
        assert cut_weight(graph, assignment) <= before

    def test_rebalance_fixes_overweight_partition(self):
        graph = Graph()
        graph.add_nodes(20)
        assignment = [0] * 20
        max_weights = [12.0, 12.0]
        rebalance(graph, assignment, 2, max_weights)
        weights = partition_weights(graph, assignment, 2)
        assert max(weights) <= 12.0
