"""Tests for heavy-edge-matching coarsening."""

from repro.graph.coarsen import coarsen_once, coarsen_to, project_assignment
from repro.graph.model import Graph
from repro.utils.rng import SeededRng


def chain_graph(length: int) -> Graph:
    graph = Graph()
    graph.add_nodes(length)
    for index in range(length - 1):
        graph.add_edge(index, index + 1, 1.0)
    return graph


def test_coarsen_once_preserves_total_node_weight():
    graph = chain_graph(20)
    level = coarsen_once(graph, SeededRng(0))
    assert level.graph.total_node_weight() == graph.total_node_weight()
    assert level.graph.num_nodes < graph.num_nodes
    assert len(level.fine_to_coarse) == graph.num_nodes


def test_coarsen_once_maps_every_node():
    graph = chain_graph(15)
    level = coarsen_once(graph, SeededRng(1))
    assert all(0 <= coarse < level.graph.num_nodes for coarse in level.fine_to_coarse)


def test_heavy_edges_preferred():
    graph = Graph()
    graph.add_nodes(4)
    graph.add_edge(0, 1, 100.0)
    graph.add_edge(1, 2, 1.0)
    graph.add_edge(2, 3, 100.0)
    level = coarsen_once(graph, SeededRng(3))
    # The heavy pairs (0,1) and (2,3) are contracted together.
    assert level.fine_to_coarse[0] == level.fine_to_coarse[1]
    assert level.fine_to_coarse[2] == level.fine_to_coarse[3]


def test_coarsen_to_target():
    graph = chain_graph(200)
    levels = coarsen_to(graph, target_nodes=30, rng=SeededRng(0))
    assert levels
    assert levels[-1].graph.num_nodes <= 60  # within a factor of the target


def test_coarsen_preserves_cut_structure():
    # Two cliques joined by one light edge: the coarse graph keeps them separable.
    graph = Graph()
    graph.add_nodes(20)
    for base in (0, 10):
        for i in range(10):
            for j in range(i + 1, 10):
                graph.add_edge(base + i, base + j, 2.0)
    graph.add_edge(0, 10, 0.5)
    levels = coarsen_to(graph, target_nodes=4, rng=SeededRng(0))
    coarse = levels[-1]
    mapping = {}
    current = list(range(graph.num_nodes))
    for level in levels:
        current = [level.fine_to_coarse[node] for node in current]
    left = {current[node] for node in range(10)}
    right = {current[node] for node in range(10, 20)}
    assert not left & right


def test_project_assignment_roundtrip():
    graph = chain_graph(30)
    level = coarsen_once(graph, SeededRng(2))
    coarse_assignment = [index % 2 for index in range(level.graph.num_nodes)]
    fine_assignment = project_assignment(level, coarse_assignment)
    assert len(fine_assignment) == graph.num_nodes
    for fine, coarse in enumerate(level.fine_to_coarse):
        assert fine_assignment[fine] == coarse_assignment[coarse]


def test_disconnected_graph_coarsens():
    graph = Graph()
    graph.add_nodes(10)  # no edges at all
    levels = coarsen_to(graph, target_nodes=2, rng=SeededRng(0))
    # Matching cannot contract anything without edges; it must not loop forever.
    assert isinstance(levels, list)
