"""Tests for PartitionAssignment."""

import pytest

from repro.catalog.tuples import TupleId
from repro.graph.assignment import PartitionAssignment


def make_assignment() -> PartitionAssignment:
    assignment = PartitionAssignment(4)
    assignment.assign(TupleId("t", (1,)), {0})
    assignment.assign(TupleId("t", (2,)), {1})
    assignment.assign(TupleId("t", (3,)), {0, 2})
    return assignment


def test_assign_and_lookup():
    assignment = make_assignment()
    assert assignment.partitions_of(TupleId("t", (1,))) == frozenset({0})
    assert assignment.partitions_of(TupleId("t", (9,))) is None
    assert TupleId("t", (2,)) in assignment
    assert len(assignment) == 3


def test_replication_detection_and_count():
    assignment = make_assignment()
    assert assignment.is_replicated(TupleId("t", (3,)))
    assert not assignment.is_replicated(TupleId("t", (1,)))
    assert assignment.replicated_count == 1


def test_out_of_range_partition_rejected():
    assignment = PartitionAssignment(2)
    with pytest.raises(ValueError):
        assignment.assign(TupleId("t", (1,)), {5})
    with pytest.raises(ValueError):
        assignment.assign(TupleId("t", (1,)), set())


def test_partition_counts_and_weights():
    assignment = make_assignment()
    assert assignment.partition_tuple_counts() == [2, 1, 1, 0]
    weights = assignment.partition_weights({TupleId("t", (1,)): 10.0})
    # Tuples missing from the weight mapping contribute zero weight.
    assert weights[0] == 10.0
    assert weights[1] == 0.0
    # Without explicit weights each tuple counts once per replica.
    assert assignment.partition_weights() == [2.0, 1.0, 1.0, 0.0]


def test_replication_labels():
    assignment = make_assignment()
    assert assignment.replication_label(TupleId("t", (1,))) == "0"
    assert assignment.replication_label(TupleId("t", (3,))) == "R0_2"
    histogram = assignment.label_histogram()
    assert histogram["0"] == 1 and histogram["R0_2"] == 1


def test_most_common_partition():
    assignment = make_assignment()
    assert assignment.most_common_partition() == 0


def test_invalid_partition_count():
    with pytest.raises(ValueError):
        PartitionAssignment(0)
