"""Tests for the frozen CSR representation and the CSR partitioner fast path."""

from repro.experiments.figure5 import synthetic_access_graph
from repro.graph.model import CSRGraph, Graph, as_csr
from repro.graph.partitioner import PartitionerOptions, cut_weight, partition_graph
from repro.graph.refine import fm_refine_bisection


def diamond_graph() -> Graph:
    graph = Graph()
    graph.add_nodes(4, weight=2.0)
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(1, 2, 3.0)
    graph.add_edge(2, 3, 5.0)
    graph.add_edge(3, 0, 7.0)
    return graph


class TestFreeze:
    def test_freeze_preserves_structure(self):
        graph = diamond_graph()
        csr = graph.freeze()
        assert csr.num_nodes == graph.num_nodes
        assert csr.num_edges == graph.num_edges
        assert csr.total_node_weight() == graph.total_node_weight()
        assert csr.total_edge_weight() == graph.total_edge_weight()
        for node in graph.nodes():
            assert csr.neighbors(node) == graph.neighbors(node)
            assert csr.degree(node) == graph.degree(node)

    def test_freeze_preserves_neighbor_order(self):
        graph = diamond_graph()
        csr = graph.freeze()
        _, indices, _, _ = csr.lists()
        for node in graph.nodes():
            start, end = csr.neighbor_slice(node)
            assert indices[start:end] == list(graph.neighbors(node).keys())

    def test_edges_iteration_matches(self):
        graph = diamond_graph()
        assert sorted(graph.freeze().edges()) == sorted(graph.edges())

    def test_edge_weight_lookup(self):
        csr = diamond_graph().freeze()
        assert csr.edge_weight(0, 1) == 1.0
        assert csr.edge_weight(1, 0) == 1.0
        assert csr.edge_weight(0, 2) == 0.0

    def test_weighted_degrees(self):
        csr = diamond_graph().freeze()
        assert csr.weighted_degrees() == [8.0, 4.0, 8.0, 12.0]

    def test_as_csr_identity_on_frozen(self):
        csr = diamond_graph().freeze()
        assert as_csr(csr) is csr

    def test_thaw_roundtrip(self):
        graph = diamond_graph()
        thawed = graph.freeze().thaw()
        assert thawed.num_nodes == graph.num_nodes
        assert sorted(thawed.edges()) == sorted(graph.edges())
        assert thawed.node_weights == graph.node_weights

    def test_empty_graph(self):
        csr = Graph().freeze()
        assert csr.num_nodes == 0
        assert csr.num_edges == 0
        assert list(csr.edges()) == []


class TestSubview:
    def test_subview_matches_subgraph(self):
        graph = synthetic_access_graph(200, 900, seed=3)
        nodes = [n for n in graph.nodes() if n % 3 != 0]
        sub, mapping = graph.subgraph(nodes)
        view, view_mapping = graph.freeze().subview(nodes)
        assert view_mapping == mapping
        assert view.num_nodes == sub.num_nodes
        assert view.num_edges == sub.num_edges
        assert view.lists()[3] == sub.node_weights
        for node in range(view.num_nodes):
            assert view.neighbors(node) == sub.neighbors(node)

    def test_subview_weighted_degrees_consistent(self):
        graph = synthetic_access_graph(100, 400, seed=1)
        view, _ = graph.freeze().subview(range(0, 100, 2))
        recomputed = [
            sum(view.edge_weights[view.indptr[n] : view.indptr[n + 1]])
            for n in range(view.num_nodes)
        ]
        assert view.weighted_degrees() == recomputed


class TestDeterminismAndEquivalence:
    """Seed-determinism regression: identical seeds must give identical output."""

    def test_partition_byte_identical_across_runs(self):
        for name, num_nodes, num_edges in (("epinions", 600, 4000), ("tpcc", 900, 6000)):
            graph = synthetic_access_graph(num_nodes, num_edges, seed=0)
            options = PartitionerOptions(seed=11, initial_trials=4, refine_passes=2)
            first = partition_graph(graph, 8, options)
            second = partition_graph(graph, 8, options)
            assert first == second, name

    def test_csr_and_legacy_paths_equal_cut(self):
        """Partitioning the mutable Graph (legacy API path) and its frozen CSR
        directly must produce the same assignment, hence equal cut weight."""
        for num_nodes, num_edges in ((600, 4000), (1000, 8000)):
            graph = synthetic_access_graph(num_nodes, num_edges, seed=0)
            options = PartitionerOptions(seed=0, initial_trials=4, refine_passes=2)
            legacy = partition_graph(graph, 8, options)
            fast = partition_graph(graph.freeze(), 8, options)
            assert legacy == fast
            assert cut_weight(graph, legacy) == cut_weight(graph.freeze(), fast)

    def test_fm_refine_equivalent_on_graph_and_csr(self):
        graph = synthetic_access_graph(300, 1500, seed=5)
        assignment_graph = [node % 2 for node in range(graph.num_nodes)]
        assignment_csr = list(assignment_graph)
        total = graph.total_node_weight()
        bounds = (total * 0.6, total * 0.6)
        fm_refine_bisection(graph, assignment_graph, bounds, max_passes=3)
        fm_refine_bisection(graph.freeze(), assignment_csr, bounds, max_passes=3)
        assert assignment_graph == assignment_csr


class TestIncrementalCounters:
    def test_num_edges_counter(self):
        graph = Graph()
        graph.add_nodes(3)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 0, 2.0)  # accumulates, not a new edge
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(2, 2, 9.0)  # self loop ignored
        assert graph.num_edges == 2

    def test_total_node_weight_tracks_set_node_weight(self):
        graph = Graph()
        graph.add_nodes(4, weight=2.0)
        assert graph.total_node_weight() == 8.0
        graph.set_node_weight(1, 5.0)
        assert graph.total_node_weight() == 11.0
        graph.set_node_weight(1, 0.0)
        assert graph.total_node_weight() == 6.0

    def test_counters_survive_copy(self):
        graph = Graph()
        graph.add_nodes(3, weight=1.5)
        graph.add_edge(0, 1)
        clone = graph.copy()
        assert clone.num_edges == 1
        assert clone.total_node_weight() == 4.5
        clone.add_edge(1, 2)
        assert clone.num_edges == 2
        assert graph.num_edges == 1

    def test_add_weighted_edges_bulk(self):
        graph = Graph()
        graph.add_nodes(4)
        graph.add_weighted_edges([((0, 1), 2.0), ((1, 2), 3.0), ((0, 1), 1.0)])
        assert graph.num_edges == 2
        assert graph.edge_weight(0, 1) == 3.0
        assert graph.edge_weight(2, 1) == 3.0
