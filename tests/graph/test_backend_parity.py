"""Cross-backend parity: numpy and pure-Python CSR kernels must match bit-for-bit.

The array backend (:mod:`repro.graph.backend`) only changes *how* the bulk
kernels execute, never *what* they compute: every vectorised kernel preserves
the scalar path's floating-point operation order.  These tests enforce the
contract end to end — same-seed partitioner assignments over real
workload-derived fixture graphs (epinions / TPC-C / TPC-E) for k in
{2, 7, 32} (the 7 exercises non-power-of-two proportional weight targets) —
and kernel by kernel.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure5 import synthetic_access_graph
from repro.graph import backend
from repro.graph.builder import GraphBuildOptions, build_tuple_graph
from repro.graph.coarsen import coarsen_once
from repro.graph.model import CSRGraph, Graph
from repro.graph.partitioner import PartitionerOptions, partition_graph
from repro.graph.refine import compute_external, kway_fm_refine
from repro.utils.rng import SeededRng
from repro.workload.rwsets import extract_access_trace
from repro.workloads import TpccConfig, generate_tpcc
from repro.workloads.epinions import EpinionsConfig, generate_epinions
from repro.workloads.tpce import TpceConfig, generate_tpce

numpy_available = backend.numpy is not None
requires_numpy = pytest.mark.skipif(not numpy_available, reason="numpy not installed")

PARTITION_COUNTS = (2, 7, 32)


def fixture_graphs() -> dict[str, Graph]:
    """Workload-derived fixture graphs, including replication (epsilon weights).

    The replication star edges carry ``count + 0.1`` weights, so duplicate
    accumulation during coarsening exercises genuine non-integer float sums —
    exactly where an order-changing vectorisation would diverge.
    """
    graphs: dict[str, Graph] = {}
    epinions = generate_epinions(
        EpinionsConfig(num_users=120, num_items=120, num_communities=4, seed=3),
        num_transactions=400,
    )
    graphs["epinions"] = build_tuple_graph(
        extract_access_trace(epinions.database, epinions.workload),
        options=GraphBuildOptions(replication=True),
    ).graph
    tpcc = generate_tpcc(
        TpccConfig(warehouses=2, districts_per_warehouse=3, customers_per_district=12, items=60),
        num_transactions=400,
    )
    graphs["tpcc"] = build_tuple_graph(
        extract_access_trace(tpcc.database, tpcc.workload),
        options=GraphBuildOptions(replication=True),
    ).graph
    tpce = generate_tpce(
        TpceConfig(customers=60, securities=30, companies=15), num_transactions=300
    )
    graphs["tpce"] = build_tuple_graph(
        extract_access_trace(tpce.database, tpce.workload),
        options=GraphBuildOptions(replication=False),
    ).graph
    return graphs


class TestBackendModule:
    def test_active_backend_is_valid(self):
        assert backend.array_backend() in ("numpy", "list")

    def test_backend_context_restores(self):
        before = backend.array_backend()
        with backend.backend_context("list"):
            assert backend.array_backend() == "list"
            csr = Graph().freeze()
            assert isinstance(csr.indices, list)
        assert backend.array_backend() == before

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            backend.set_array_backend("cupy")

    def test_list_backend_conversion_helpers(self):
        with backend.backend_context("list"):
            assert backend.as_index_array([1, 2]) == [1, 2]
            assert backend.as_weight_array([1.0]) == [1.0]
        assert backend.to_list([3, 4]) == [3, 4]

    @requires_numpy
    def test_numpy_backend_array_types(self):
        np = backend.numpy
        with backend.backend_context("numpy"):
            graph = Graph()
            graph.add_nodes(3)
            graph.add_edge(0, 1, 2.0)
            csr = graph.freeze()
            assert isinstance(csr.indices, np.ndarray)
            assert csr.indices.dtype == np.int64
            assert csr.edge_weights.dtype == np.float64
            assert csr.is_numpy
        assert backend.to_list(csr.indices) == [1, 0]


@requires_numpy
class TestKernelParity:
    """Each vectorised kernel must reproduce the scalar kernel exactly."""

    def _both(self, build):
        with backend.backend_context("numpy"):
            from_numpy = build()
        with backend.backend_context("list"):
            from_list = build()
        return from_numpy, from_list

    @staticmethod
    def _csr_equal(a: CSRGraph, b: CSRGraph):
        assert a.lists() == b.lists()

    def test_freeze_and_weighted_degrees(self):
        graph = synthetic_access_graph(900, 8000, seed=2)
        a, b = self._both(graph.freeze)
        self._csr_equal(a, b)
        assert a.weighted_degrees() == b.weighted_degrees()

    def test_subview_parity(self):
        graph = synthetic_access_graph(1500, 12000, seed=4)
        nodes = [n for n in range(1500) if n % 5 != 0]

        def build():
            view, mapping = graph.freeze().subview(nodes)
            return view, mapping

        (va, ma), (vb, mb) = self._both(build)
        assert ma == mb
        self._csr_equal(va, vb)

    def test_coarsen_parity(self):
        graph = synthetic_access_graph(1200, 10000, seed=5)

        def build():
            level = coarsen_once(graph.freeze(), SeededRng(9))
            return level

        la, lb = self._both(build)
        assert la.fine_to_coarse == lb.fine_to_coarse
        self._csr_equal(la.graph, lb.graph)

    def test_compute_external_parity(self):
        graph = synthetic_access_graph(1100, 9000, seed=6)
        assignment = [node % 5 for node in range(1100)]

        def build():
            return compute_external(graph.freeze(), assignment)

        ea, eb = self._both(build)
        assert ea == eb

    def test_kway_fm_parity(self):
        graph = synthetic_access_graph(1100, 9000, seed=7)
        base = [node % 6 for node in range(1100)]
        max_weights = [graph.total_node_weight() / 6 * 1.2] * 6

        def build():
            assignment = list(base)
            kway_fm_refine(graph.freeze(), assignment, 6, max_weights, 2, 32)
            return assignment

        ra, rb = self._both(build)
        assert ra == rb


@requires_numpy
class TestAssignmentParity:
    """Fixture-graph partitions must be byte-identical across backends."""

    @pytest.mark.parametrize("num_parts", PARTITION_COUNTS)
    def test_fixture_graph_assignments(self, num_parts):
        for name, graph in fixture_graphs().items():
            options = PartitionerOptions(seed=13, initial_trials=4, refine_passes=2)
            with backend.backend_context("numpy"):
                from_numpy = partition_graph(graph.freeze(), num_parts, options)
            with backend.backend_context("list"):
                from_list = partition_graph(graph.freeze(), num_parts, options)
            assert from_numpy == from_list, (name, num_parts)

    def test_synthetic_large_graph_assignment(self):
        graph = synthetic_access_graph(2500, 20000, seed=1)
        options = PartitionerOptions(seed=0, initial_trials=4, refine_passes=2)
        with backend.backend_context("numpy"):
            from_numpy = partition_graph(graph.freeze(), 32, options)
        with backend.backend_context("list"):
            from_list = partition_graph(graph.freeze(), 32, options)
        assert from_numpy == from_list
