"""Tests for the workload -> graph builder."""

from repro.catalog.tuples import TupleId
from repro.graph.builder import GraphBuildOptions, build_tuple_graph
from repro.workload.rwsets import extract_access_trace


def test_bank_graph_structure(bank_database, bank_workload):
    trace = extract_access_trace(bank_database, bank_workload)
    options = GraphBuildOptions(replication=False, coalesce_tuples=False)
    tuple_graph = build_tuple_graph(trace, bank_database, options)
    # Five accounts are touched; without replication each is one node.
    assert tuple_graph.num_tuples == 5
    assert tuple_graph.num_nodes == 5
    # Figure 2: edges {1,2}, {1,3}, {2,5} plus the clique of the bulk update
    # over accounts with bal < 100k.
    assert tuple_graph.num_edges >= 3


def test_replication_explodes_frequent_tuples(bank_database, bank_workload):
    trace = extract_access_trace(bank_database, bank_workload)
    options = GraphBuildOptions(replication=True, coalesce_tuples=False, min_accesses_for_replication=2)
    tuple_graph = build_tuple_graph(trace, bank_database, options)
    # Tuple 1 (carlo) is accessed by three transactions -> a star of 4 nodes.
    group = tuple_graph.group_of(TupleId("account", (1,)))
    assert group is not None and group.exploded
    assert len(group.satellites) == 3
    assert tuple_graph.num_nodes > 5


def test_coalescing_merges_identical_signatures(bank_database):
    from repro.sqlparse.ast import SelectStatement, in_list
    from repro.workload.trace import Workload

    workload = Workload("coalesce")
    for _ in range(3):
        workload.add_statements([SelectStatement(("account",), where=in_list("id", [1, 2]))])
    trace = extract_access_trace(bank_database, workload)
    merged = build_tuple_graph(trace, bank_database, GraphBuildOptions(coalesce_tuples=True, replication=False))
    separate = build_tuple_graph(trace, bank_database, GraphBuildOptions(coalesce_tuples=False, replication=False))
    assert merged.num_nodes == 1
    assert separate.num_nodes == 2
    # Both tuples map to the same group after coalescing.
    assert merged.group_of(TupleId("account", (1,))) is merged.group_of(TupleId("account", (2,)))


def test_data_size_weighting(bank_database, bank_workload):
    trace = extract_access_trace(bank_database, bank_workload)
    options = GraphBuildOptions(node_weighting="data_size", replication=False, coalesce_tuples=False)
    tuple_graph = build_tuple_graph(trace, bank_database, options)
    row_size = bank_database.table("account").row_byte_size
    assert all(weight == row_size for weight in tuple_graph.graph.node_weights)


def test_workload_weighting_counts_accesses(bank_database, bank_workload):
    trace = extract_access_trace(bank_database, bank_workload)
    options = GraphBuildOptions(node_weighting="workload", replication=False, coalesce_tuples=False)
    tuple_graph = build_tuple_graph(trace, bank_database, options)
    group = tuple_graph.group_of(TupleId("account", (1,)))
    assert tuple_graph.graph.node_weights[group.center_node] == 3.0


def test_to_partition_assignment_with_replication(bank_database, bank_workload):
    trace = extract_access_trace(bank_database, bank_workload)
    tuple_graph = build_tuple_graph(trace, bank_database, GraphBuildOptions())
    # Force every node to partition 0 except one satellite of a replicated tuple.
    assignment_vector = [0] * tuple_graph.num_nodes
    exploded = next(group for group in tuple_graph.groups if group.exploded)
    some_satellite = next(iter(exploded.satellites.values()))
    assignment_vector[some_satellite] = 1
    assignment = tuple_graph.to_partition_assignment(assignment_vector, 2)
    member = exploded.members[0]
    assert assignment.partitions_of(member) == frozenset({0, 1})
    assert assignment.is_replicated(member)


def test_transaction_sampling_reduces_graph(bank_database, tiny_tpcc):
    trace = extract_access_trace(tiny_tpcc.database, tiny_tpcc.workload)
    full = build_tuple_graph(trace, tiny_tpcc.database, GraphBuildOptions(seed=1))
    sampled = build_tuple_graph(
        trace,
        tiny_tpcc.database,
        GraphBuildOptions(transaction_sample_fraction=0.3, tuple_sample_fraction=0.5, seed=1),
    )
    assert sampled.num_transactions < full.num_transactions
    assert sampled.num_nodes < full.num_nodes


def test_invalid_weighting_rejected():
    import pytest

    with pytest.raises(ValueError):
        GraphBuildOptions(node_weighting="bogus")
