"""Tests for the graph data structure."""

import pytest

from repro.graph.model import Graph


def test_add_nodes_and_edges():
    graph = Graph()
    nodes = graph.add_nodes(3, weight=2.0)
    graph.add_edge(nodes[0], nodes[1], 1.5)
    graph.add_edge(nodes[1], nodes[2])
    assert graph.num_nodes == 3
    assert graph.num_edges == 2
    assert graph.total_node_weight() == 6.0
    assert graph.edge_weight(0, 1) == 1.5
    assert graph.degree(1) == 2


def test_edge_weights_accumulate():
    graph = Graph()
    graph.add_nodes(2)
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(1, 0, 2.0)
    assert graph.edge_weight(0, 1) == 3.0
    assert graph.num_edges == 1
    assert graph.total_edge_weight() == 3.0


def test_self_loops_ignored():
    graph = Graph()
    graph.add_nodes(1)
    graph.add_edge(0, 0, 5.0)
    assert graph.num_edges == 0


def test_negative_weights_rejected():
    graph = Graph()
    graph.add_nodes(2)
    with pytest.raises(ValueError):
        graph.add_node(-1.0)
    with pytest.raises(ValueError):
        graph.add_edge(0, 1, -2.0)


def test_unknown_node_rejected():
    graph = Graph()
    graph.add_nodes(2)
    with pytest.raises(IndexError):
        graph.add_edge(0, 5)


def test_edges_iteration_unique():
    graph = Graph()
    graph.add_nodes(3)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    edges = list(graph.edges())
    assert len(edges) == 2
    assert all(u < v for u, v, _w in edges)


def test_subgraph_preserves_weights_and_edges():
    graph = Graph()
    graph.add_nodes(4)
    graph.set_node_weight(2, 7.0)
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(1, 2, 2.0)
    graph.add_edge(2, 3, 3.0)
    sub, mapping = graph.subgraph([1, 2, 3])
    assert sub.num_nodes == 3
    assert mapping == [1, 2, 3]
    assert sub.num_edges == 2
    assert sub.node_weights[1] == 7.0


def test_copy_is_independent():
    graph = Graph()
    graph.add_nodes(2)
    graph.add_edge(0, 1, 1.0)
    clone = graph.copy()
    clone.add_edge(0, 1, 1.0)
    assert graph.edge_weight(0, 1) == 1.0
    assert clone.edge_weight(0, 1) == 2.0


def test_connected_components():
    graph = Graph()
    graph.add_nodes(5)
    graph.add_edge(0, 1)
    graph.add_edge(2, 3)
    components = sorted(sorted(component) for component in graph.connected_components())
    assert components == [[0, 1], [2, 3], [4]]


def test_scale_weights_decays_everything():
    graph = Graph()
    graph.add_nodes(3, weight=2.0)
    graph.add_edge(0, 1, 4.0)
    graph.add_edge(1, 2, 2.0)
    graph.scale_weights(0.5)
    assert graph.node_weights == [1.0, 1.0, 1.0]
    assert graph.total_node_weight() == 3.0
    assert graph.edge_weight(0, 1) == 2.0
    assert graph.edge_weight(1, 2) == 1.0
    # Symmetric halves stay consistent.
    assert graph.edge_weight(1, 0) == 2.0


def test_scale_weights_rejects_negative():
    graph = Graph()
    graph.add_node()
    with pytest.raises(ValueError):
        graph.scale_weights(-1.0)


def test_prune_edges_drops_light_edges_only():
    graph = Graph()
    graph.add_nodes(4)
    graph.add_edge(0, 1, 5.0)
    graph.add_edge(1, 2, 0.1)
    graph.add_edge(2, 3, 0.1)
    removed = graph.prune_edges(0.5)
    assert removed == 2
    assert graph.num_edges == 1
    assert graph.edge_weight(0, 1) == 5.0
    assert graph.edge_weight(1, 2) == 0.0
    assert graph.degree(2) == 0
    # Node set is untouched.
    assert graph.num_nodes == 4


def test_scale_then_prune_matches_decay_lifecycle():
    graph = Graph()
    graph.add_nodes(2)
    graph.add_edge(0, 1, 1.0)
    for _ in range(5):
        graph.scale_weights(0.5)
    assert graph.prune_edges(0.1) == 1
    assert graph.num_edges == 0
    # Freezing after maintenance still works.
    csr = graph.freeze()
    assert csr.num_nodes == 2 and csr.num_edges == 0
