"""Tests for the direct k-way bucket-FM refiner and the direct k-way path."""

from __future__ import annotations

import random

import pytest

from repro.experiments.figure5 import synthetic_access_graph
from repro.graph.model import Graph
from repro.graph.partitioner import (
    GraphPartitioner,
    PartitionerOptions,
    cut_weight,
    partition_graph,
    partition_weights,
)
from repro.graph.refine import (
    MoveCostModel,
    compute_external,
    cut_weight_two_way,
    kway_fm_refine,
    side_weights,
)


def clusters_graph(num_clusters: int, cluster_size: int, intra_weight: float = 5.0) -> Graph:
    graph = Graph()
    graph.add_nodes(num_clusters * cluster_size)
    for cluster in range(num_clusters):
        base = cluster * cluster_size
        for i in range(cluster_size):
            for j in range(i + 1, cluster_size):
                graph.add_edge(base + i, base + j, intra_weight)
        graph.add_edge(base, ((cluster + 1) % num_clusters) * cluster_size, 1.0)
    return graph


class TestKwayFmRefine:
    def test_recovers_scrambled_clusters(self):
        graph = clusters_graph(4, 8)
        csr = graph.freeze()
        assignment = [node % 4 for node in range(csr.num_nodes)]
        max_weights = [graph.total_node_weight() / 4 * 1.3] * 4
        before = cut_weight_two_way(csr, assignment)
        kway_fm_refine(csr, assignment, 4, max_weights, max_passes=4)
        after = cut_weight_two_way(csr, assignment)
        assert after < before
        assert after <= 8.0  # the four ring edges, up to balance compromises

    def test_returns_exact_external(self):
        graph = synthetic_access_graph(300, 1800, seed=2)
        csr = graph.freeze()
        assignment = [node % 5 for node in range(csr.num_nodes)]
        max_weights = [graph.total_node_weight() / 5 * 1.2] * 5
        external = kway_fm_refine(csr, assignment, 5, max_weights, max_passes=2)
        assert external == compute_external(csr, assignment)

    def test_never_worsens_cut(self):
        rng = random.Random(0)
        for _ in range(60):
            graph = Graph()
            num_nodes = rng.randint(6, 40)
            num_parts = rng.randint(2, 6)
            graph.add_nodes(num_nodes, 1.0)
            for _ in range(rng.randint(num_nodes, 4 * num_nodes)):
                u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
                if u != v:
                    graph.add_edge(u, v, float(rng.randint(1, 9)))
            csr = graph.freeze()
            assignment = [rng.randrange(num_parts) for _ in range(num_nodes)]
            max_weights = [graph.total_node_weight() / num_parts * 1.6 + 1.0] * num_parts
            before = cut_weight_two_way(csr, assignment)
            kway_fm_refine(csr, assignment, num_parts, max_weights, max_passes=3)
            assert cut_weight_two_way(csr, assignment) <= before + 1e-9

    def test_respects_balance(self):
        graph = synthetic_access_graph(200, 1200, seed=4)
        csr = graph.freeze()
        assignment = [node % 4 for node in range(csr.num_nodes)]
        max_weights = [graph.total_node_weight() / 4 * 1.1 + 1.0] * 4
        kway_fm_refine(csr, assignment, 4, max_weights, max_passes=3)
        weights = side_weights(csr, assignment, 4)
        assert all(weights[p] <= max_weights[p] + 1e-9 for p in range(4))

    def test_deterministic(self):
        graph = synthetic_access_graph(250, 1500, seed=5)
        csr = graph.freeze()
        max_weights = [graph.total_node_weight() / 3 * 1.2] * 3
        first = [node % 3 for node in range(csr.num_nodes)]
        second = list(first)
        kway_fm_refine(csr, first, 3, max_weights, max_passes=3)
        kway_fm_refine(csr, second, 3, max_weights, max_passes=3)
        assert first == second

    def test_cost_model_blocks_and_refunds(self):
        # One stranded node: without costs it returns home; with a punitive
        # cost weight it stays.
        graph = Graph()
        graph.add_nodes(6)
        for group in ((0, 1, 2), (3, 4, 5)):
            for i in group:
                for j in group:
                    if i < j:
                        graph.add_edge(i, j, 10.0)
        csr = graph.freeze()
        max_weights = [10.0, 10.0]
        cheap = MoveCostModel(home=[0, 0, 1, 1, 1, 1], costs=[1.0] * 6, cost_weight=0.1)
        assignment = [0, 0, 1, 1, 1, 1]
        kway_fm_refine(csr, assignment, 2, max_weights, cost_model=cheap)
        assert assignment == [0, 0, 0, 1, 1, 1]
        assert cheap.spent == 1.0  # node 2 left its (stale) home
        pricey = MoveCostModel(home=[0, 0, 1, 1, 1, 1], costs=[1.0] * 6, cost_weight=100.0)
        assignment = [0, 0, 1, 1, 1, 1]
        kway_fm_refine(csr, assignment, 2, max_weights, cost_model=pricey)
        assert assignment == [0, 0, 1, 1, 1, 1]
        assert pricey.spent == 0.0


class TestDirectKwayPath:
    def test_direct_matches_or_beats_recursive_structure(self):
        graph = clusters_graph(6, 8)
        direct = partition_graph(graph, 6, PartitionerOptions(seed=3))
        recursive = partition_graph(
            graph, 6, PartitionerOptions(seed=3, kway_mode="recursive")
        )
        # Both must recover the clusters up to the light ring edges.
        assert cut_weight(graph, direct) <= 12.0
        assert cut_weight(graph, recursive) <= 12.0

    def test_direct_respects_balance_non_power_of_two(self):
        graph = synthetic_access_graph(700, 5000, seed=8)
        options = PartitionerOptions(seed=1, imbalance=0.05)
        assignment = GraphPartitioner(options).partition(graph, 7)
        weights = partition_weights(graph, assignment, 7)
        ideal = graph.total_node_weight() / 7
        assert max(weights) <= ideal * 1.05 + max(graph.node_weights) + 1e-9

    def test_direct_deterministic_and_mode_selection(self):
        graph = synthetic_access_graph(400, 2500, seed=9)
        frozen = graph.freeze()
        options = PartitionerOptions(seed=5)
        first = partition_graph(frozen, 5, options)
        second = partition_graph(frozen, 5, options)
        assert first == second
        forced = partition_graph(frozen, 5, PartitionerOptions(seed=5, kway_mode="direct"))
        assert forced == first

    def test_hierarchy_cache_reused_across_k(self):
        graph = synthetic_access_graph(600, 4000, seed=10)
        frozen = graph.freeze()
        options = PartitionerOptions(seed=2)
        partition_graph(frozen, 8, options)
        chain = frozen._hierarchy[2]["levels"]
        assert chain  # built by the first call
        partition_graph(frozen, 16, options)
        assert frozen._hierarchy[2]["levels"] is chain  # extended, not rebuilt

    def test_cached_chain_gives_same_result_as_cold(self):
        graph = synthetic_access_graph(500, 3500, seed=11)
        options = PartitionerOptions(seed=4)
        warm_graph = graph.freeze()
        partition_graph(warm_graph, 4, options)  # builds the chain
        warm = partition_graph(warm_graph, 12, options)
        cold = partition_graph(graph.freeze(), 12, options)
        assert warm == cold


class TestOptionsValidation:
    def test_non_positive_counts_are_clamped(self):
        options = PartitionerOptions(coarsen_target=0, initial_trials=-3, refine_passes=0)
        assert options.coarsen_target == 1
        assert options.initial_trials == 1
        assert options.refine_passes == 1

    def test_negative_imbalance_rejected(self):
        with pytest.raises(ValueError):
            PartitionerOptions(imbalance=-0.1)

    def test_bad_kway_mode_rejected(self):
        with pytest.raises(ValueError):
            PartitionerOptions(kway_mode="bisect-harder")

    def test_clamped_options_still_partition(self):
        graph = clusters_graph(3, 6)
        assignment = partition_graph(
            graph, 3, PartitionerOptions(seed=0, coarsen_target=-5, initial_trials=0)
        )
        assert sorted(set(assignment)) == [0, 1, 2]

    def test_single_trial_uses_greedy_growing(self):
        # Regression: initial_trials=1 used to fall through to the *random*
        # bisection fallback, silently degrading every partition.
        graph = clusters_graph(2, 16)
        assignment = partition_graph(graph, 2, PartitionerOptions(seed=1, initial_trials=1))
        assert cut_weight(graph, assignment) == 2.0  # the two ring edges
