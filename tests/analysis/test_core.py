"""Framework mechanics: findings, suppression pragmas, deterministic order."""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Finding,
    InvariantPass,
    ModuleSource,
    Project,
    Suppressions,
    dotted_name,
    run_passes,
    terminal_name,
)


def _write_module(tmp_path, relpath: str, text: str) -> None:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


class _EveryCallPass(InvariantPass):
    """Toy pass flagging every call expression — exercises the plumbing."""

    name = "every-call"
    description = "flags every ast.Call"

    def run(self, project: Project) -> list[Finding]:
        findings = []
        for module in project.modules():
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    findings.append(self.finding(module, node, "call site"))
        return findings


def test_finding_format_and_payload():
    finding = Finding(path="pkg/a.py", line=3, col=4, rule="r", message="m")
    assert finding.format() == "pkg/a.py:3:4: [r] m"
    assert finding.to_payload() == {
        "path": "pkg/a.py",
        "line": 3,
        "col": 4,
        "rule": "r",
        "message": "m",
    }


def test_findings_sort_by_location_then_rule():
    findings = [
        Finding("b.py", 1, 0, "r", "m"),
        Finding("a.py", 2, 0, "r", "m"),
        Finding("a.py", 1, 5, "r", "m"),
        Finding("a.py", 1, 0, "z", "m"),
        Finding("a.py", 1, 0, "r", "m"),
    ]
    ordered = sorted(findings)
    assert [(f.path, f.line, f.col, f.rule) for f in ordered] == [
        ("a.py", 1, 0, "r"),
        ("a.py", 1, 0, "z"),
        ("a.py", 1, 5, "r"),
        ("a.py", 2, 0, "r"),
        ("b.py", 1, 0, "r"),
    ]


def test_line_pragma_suppresses_only_named_rule():
    suppressions = Suppressions("x = f()  # repro: allow(every-call) reason\n")
    waived = Finding("m.py", 1, 4, "every-call", "call site")
    other_rule = Finding("m.py", 1, 4, "determinism", "something")
    other_line = Finding("m.py", 2, 4, "every-call", "call site")
    assert suppressions.suppresses(waived)
    assert not suppressions.suppresses(other_rule)
    assert not suppressions.suppresses(other_line)


def test_line_pragma_accepts_rule_list():
    suppressions = Suppressions("x = f()  # repro: allow(a, b) why\n")
    assert suppressions.suppresses(Finding("m.py", 1, 0, "a", "m"))
    assert suppressions.suppresses(Finding("m.py", 1, 0, "b", "m"))
    assert not suppressions.suppresses(Finding("m.py", 1, 0, "c", "m"))


def test_file_pragma_suppresses_every_line():
    suppressions = Suppressions("# repro: allow-file(every-call) whole module\nf()\ng()\n")
    assert suppressions.suppresses(Finding("m.py", 2, 0, "every-call", "m"))
    assert suppressions.suppresses(Finding("m.py", 3, 0, "every-call", "m"))
    assert not suppressions.suppresses(Finding("m.py", 2, 0, "other", "m"))


def test_run_passes_splits_active_from_suppressed(tmp_path):
    _write_module(
        tmp_path,
        "pkg/mod.py",
        "f()\ng()  # repro: allow(every-call) justified\n",
    )
    project = Project(tmp_path, relative_roots=("pkg",))
    active, suppressed = run_passes(project, [_EveryCallPass()])
    assert [f.line for f in active] == [1]
    assert [f.line for f in suppressed] == [2]


def test_run_passes_output_is_sorted_and_deduplicated(tmp_path):
    _write_module(tmp_path, "pkg/b.py", "f()\n")
    _write_module(tmp_path, "pkg/a.py", "g()\nh()\n")
    project = Project(tmp_path, relative_roots=("pkg",))
    # Running the same pass twice must not duplicate findings.
    active, _ = run_passes(project, [_EveryCallPass(), _EveryCallPass()])
    assert [(f.path, f.line) for f in active] == [
        ("pkg/a.py", 1),
        ("pkg/a.py", 2),
        ("pkg/b.py", 1),
    ]


def test_project_modules_sorted_and_lookup(tmp_path):
    _write_module(tmp_path, "pkg/z.py", "x = 1\n")
    _write_module(tmp_path, "pkg/sub/a.py", "y = 2\n")
    project = Project(tmp_path, relative_roots=("pkg",))
    assert [m.relpath for m in project.modules()] == ["pkg/sub/a.py", "pkg/z.py"]
    assert project.module("pkg/z.py") is not None
    assert project.module("pkg/missing.py") is None


def test_module_source_parses_and_records_relpath(tmp_path):
    _write_module(tmp_path, "pkg/m.py", "value = 1\n")
    module = ModuleSource.load(tmp_path / "pkg" / "m.py", tmp_path)
    assert module.relpath == "pkg/m.py"
    assert isinstance(module.tree, ast.Module)


def test_dotted_and_terminal_name_helpers():
    node = ast.parse("a.b.c", mode="eval").body
    assert dotted_name(node) == "a.b.c"
    assert terminal_name(node) == "c"
    call = ast.parse("f()", mode="eval").body
    assert dotted_name(call) is None
    assert terminal_name(call) is None
