"""Determinism lint: each banned construct is caught, sanctioned ones are not."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.core import Project, run_passes
from repro.analysis.determinism import DeterminismPass


def _findings(tmp_path, source: str):
    path = tmp_path / "pkg" / "mod.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    project = Project(tmp_path, relative_roots=("pkg",))
    active, suppressed = run_passes(project, [DeterminismPass()])
    return active, suppressed


@pytest.mark.parametrize(
    "snippet, needle",
    [
        ("import random\nx = random.random()\n", "bare random.random()"),
        ("import random\nx = random.shuffle(items)\n", "bare random.shuffle()"),
        ("import time\nx = time.time()\n", "time.time()"),
        ("import time\nx = time.time_ns()\n", "time.time_ns()"),
        ("import os\nx = os.urandom(8)\n", "os.urandom"),
        ("import uuid\nx = uuid.uuid4()\n", "uuid.uuid4"),
        ("import uuid\nx = uuid.uuid1()\n", "uuid.uuid1"),
        ("import secrets\nx = secrets.token_hex()\n", "secrets.*"),
        (
            "from datetime import datetime\nx = datetime.now()\n",
            "wall-clock datetime.now()",
        ),
        ("import datetime\nx = datetime.date.today()\n", "wall-clock date.today()"),
        ("x = list(set(items))\n", "materialises set iteration order"),
        ("x = tuple({1, 2} | {3})\n", "materialises set iteration order"),
        ("x = ', '.join(set(names))\n", "str.join over a set expression"),
        ("import json\nx = json.dumps(payload)\n", "without sort_keys=True"),
        (
            "import json\nx = json.dumps(payload, sort_keys=False)\n",
            "without sort_keys=True",
        ),
        ("for item in set(items):\n    pass\n", "for-loop over a set expression"),
        ("x = [item for item in set(items)]\n", "comprehension over a set expression"),
        (
            "x = {key: 1 for key in set(keys)}\n",
            "dict comprehension over a set expression",
        ),
        ("y = rng.fork(table)\n", "fork salt is fully dynamic"),
        ("y = rng.fork((table, other))\n", "fork salt is fully dynamic"),
        ("y = rng.fork('a', 'b')\n", "exactly one positional salt"),
    ],
)
def test_flags_banned_construct(tmp_path, snippet, needle):
    active, _ = _findings(tmp_path, snippet)
    assert len(active) == 1, [f.format() for f in active]
    assert needle in active[0].message
    assert active[0].rule == "determinism"


@pytest.mark.parametrize(
    "snippet",
    [
        # Seeded construction is the sanctioned entry point.
        "import random\nx = random.Random(0)\n",
        # Volatile-telemetry primitives (Stopwatch, deadlines) are exempt.
        "import time\nx = time.perf_counter()\ny = time.monotonic()\n",
        # Order-insensitive consumption of sets is fine...
        "x = sorted(set(a) | set(b))\n",
        "x = max(set(items))\nn = len(set(items))\n",
        # ...including a generator fed straight into one.
        "x = sorted(item for item in set(a) | set(b))\n",
        "ok = any(item > 0 for item in items)\n",
        # A set comprehension stays a set — no order fixed yet.
        "x = {item.key for item in items}\n",
        # Canonical serialization pattern.
        "import json\nx = json.dumps(payload, sort_keys=True)\n",
        # Tagged fork salts: literal, or tuple carrying a static tag.
        "y = rng.fork('partitioner')\nz = rng.fork(('retry', key))\n",
        "y = rng.fork(17)\n",
        # Iterating an ordinary list is no finding.
        "for item in items:\n    pass\n",
    ],
)
def test_sanctioned_construct_is_clean(tmp_path, snippet):
    active, _ = _findings(tmp_path, snippet)
    assert active == [], [f.format() for f in active]


def test_import_aliases_are_resolved(tmp_path):
    active, _ = _findings(
        tmp_path,
        """
        import time as clock
        from os import urandom
        a = clock.time()
        b = urandom(4)
        """,
    )
    messages = sorted(f.message for f in active)
    assert len(active) == 2
    assert any("time.time()" in m for m in messages)
    assert any("os.urandom" in m for m in messages)


def test_line_pragma_waives_the_finding(tmp_path):
    active, suppressed = _findings(
        tmp_path,
        "y = rng.fork(table)  # repro: allow(determinism) parent already tagged\n",
    )
    assert active == []
    assert len(suppressed) == 1
    assert suppressed[0].rule == "determinism"
