"""Lock-order pass: acquisition sites must be provably sorted."""

from __future__ import annotations

import textwrap

from repro.analysis.core import Project, run_passes
from repro.analysis.lock_order import LockOrderPass


def _findings(tmp_path, source: str):
    path = tmp_path / "pkg" / "mod.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    project = Project(tmp_path, relative_roots=("pkg",))
    active, _ = run_passes(project, [LockOrderPass(targets=("pkg/mod.py",))])
    return active


def test_unsorted_token_list_is_flagged(tmp_path):
    active = _findings(
        tmp_path,
        """
        def commit(self, tokens):
            self.locks.acquire(tokens)
        """,
    )
    assert len(active) == 1
    assert active[0].rule == "lock-order"
    assert "not provably sorted" in active[0].message


def test_direct_sorted_call_is_safe(tmp_path):
    active = _findings(
        tmp_path,
        """
        def commit(self, tokens):
            self.locks.acquire(sorted(tokens, key=repr))
        """,
    )
    assert active == []


def test_sorted_producer_function_is_safe(tmp_path):
    active = _findings(
        tmp_path,
        """
        def write_lock_tokens(batches):
            return sorted(batches, key=repr)

        def commit(self, batches):
            self.locks.acquire(write_lock_tokens(batches))
        """,
    )
    assert active == []


def test_producer_delegating_to_producer_is_safe(tmp_path):
    # One fixpoint round: _tokens returns write_lock_tokens' result.
    active = _findings(
        tmp_path,
        """
        def write_lock_tokens(batches):
            return sorted(batches, key=repr)

        def _tokens(self, tuple_id):
            return write_lock_tokens([tuple_id])

        def copy(self, tuple_id):
            self.locks.acquire(self._tokens(tuple_id))
        """,
    )
    assert active == []


def test_name_resolved_through_conditional_assignment(tmp_path):
    active = _findings(
        tmp_path,
        """
        def commit(self, batches, schema):
            tokens = sorted(batches, key=repr) if schema is not None else []
            self.locks.acquire(tokens)
        """,
    )
    assert active == []


def test_name_with_unsorted_assignment_is_flagged(tmp_path):
    active = _findings(
        tmp_path,
        """
        def commit(self, batches):
            tokens = [make_token(batch) for batch in batches]
            self.locks.acquire(tokens)
        """,
    )
    assert len(active) == 1


def test_single_element_literal_is_trivially_ordered(tmp_path):
    active = _findings(
        tmp_path,
        """
        def lone(self, token):
            self.locks.acquire([token])

        def empty(self):
            self.locks.acquire([])
        """,
    )
    assert active == []


def test_out_of_scope_module_is_ignored(tmp_path):
    path = tmp_path / "pkg" / "other.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("def f(self, t):\n    self.locks.acquire(t)\n", encoding="utf-8")
    project = Project(tmp_path, relative_roots=("pkg",))
    active, _ = run_passes(project, [LockOrderPass(targets=("pkg/mod.py",))])
    assert active == []


def test_non_lock_acquire_calls_are_ignored(tmp_path):
    # Semaphore.acquire() and friends are not token-lock sites.
    active = _findings(
        tmp_path,
        """
        def wait(self, semaphore):
            semaphore.acquire(timeout)
        """,
    )
    assert active == []
