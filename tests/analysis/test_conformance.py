"""The live tree satisfies its own invariants, and the CLI proves it in CI."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis import analyze, default_registry

REPO_ROOT = Path(__file__).resolve().parents[2]
CHECKER = REPO_ROOT / "tools" / "check_invariants.py"


def test_live_tree_has_no_active_findings():
    active, _suppressed = analyze(REPO_ROOT, default_registry())
    assert active == [], "\n".join(finding.format() for finding in active)


def test_every_suppressed_finding_sits_on_a_pragma_line():
    _active, suppressed = analyze(REPO_ROOT, default_registry())
    for finding in suppressed:
        line = (
            (REPO_ROOT / finding.path)
            .read_text(encoding="utf-8")
            .splitlines()[finding.line - 1]
        )
        assert "repro: allow" in line, finding.format()


def test_default_registry_covers_the_four_invariants():
    names = [invariant_pass.name for invariant_pass in default_registry()]
    assert names == [
        "determinism",
        "lock-order",
        "exception-classification",
        "journal-discipline",
    ]


def test_unknown_rule_filter_raises():
    import pytest

    with pytest.raises(ValueError, match="unknown"):
        analyze(REPO_ROOT, default_registry(), rules=["no-such-rule"])


def test_cli_strict_exits_zero_on_the_live_tree():
    result = subprocess.run(
        [sys.executable, str(CHECKER), "--strict"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_cli_json_payload_is_byte_deterministic():
    runs = [
        subprocess.run(
            [sys.executable, str(CHECKER), "--json"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        for _ in range(2)
    ]
    assert runs[0].returncode == 0 and runs[1].returncode == 0
    assert runs[0].stdout == runs[1].stdout
    payload = json.loads(runs[0].stdout)
    assert payload["version"] == 1
    assert payload["findings"] == []
    assert len(payload["passes"]) == 4


def test_cli_rule_filter_and_list():
    listing = subprocess.run(
        [sys.executable, str(CHECKER), "--list"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert listing.returncode == 0
    assert "determinism:" in listing.stdout
    filtered = subprocess.run(
        [sys.executable, str(CHECKER), "--strict", "--rule", "lock-order"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert filtered.returncode == 0, filtered.stdout + filtered.stderr
    unknown = subprocess.run(
        [sys.executable, str(CHECKER), "--rule", "bogus"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert unknown.returncode == 2
