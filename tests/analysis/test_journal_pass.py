"""Journal-discipline pass: progress calls must be followed by a persist."""

from __future__ import annotations

import textwrap

from repro.analysis.core import Project, run_passes
from repro.analysis.journal import JournalDisciplinePass


def _findings(tmp_path, source: str):
    path = tmp_path / "pkg" / "mig.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    project = Project(tmp_path, relative_roots=("pkg",))
    active, _ = run_passes(
        project, [JournalDisciplinePass(targets=("pkg/mig.py",))]
    )
    return active


def test_transition_without_persist_is_flagged(tmp_path):
    active = _findings(
        tmp_path,
        """
        def tick(self):
            self._transition("copying")
        """,
    )
    assert len(active) == 1
    assert active[0].rule == "journal-discipline"
    assert "_transition" in active[0].message
    assert "no _persist call follows" in active[0].message


def test_transition_followed_by_persist_is_clean(tmp_path):
    active = _findings(
        tmp_path,
        """
        def tick(self):
            self._transition("copying")
            self._persist()
        """,
    )
    assert active == []


def test_conditional_persist_after_batch_satisfies_the_check(tmp_path):
    active = _findings(
        tmp_path,
        """
        def tick(self):
            progressed = self._run_batch()
            if progressed:
                self._persist()
        """,
    )
    assert active == []


def test_persist_before_but_not_after_is_flagged(tmp_path):
    # Persisting only *before* the effect leaves the progress record stale.
    active = _findings(
        tmp_path,
        """
        def tick(self):
            self._persist()
            self._run_batch()
        """,
    )
    assert len(active) == 1
    assert "_run_batch" in active[0].message


def test_each_effect_kind_is_audited(tmp_path):
    active = _findings(
        tmp_path,
        """
        def restore(self):
            self._run_restore_batch()

        def remove(self):
            self._run_remove_batch()
        """,
    )
    assert len(active) == 2


def test_the_primitives_themselves_are_exempt(tmp_path):
    # _persist/_transition implementations may call each other freely.
    active = _findings(
        tmp_path,
        """
        def _transition(self, state):
            self.state = state

        def _persist(self):
            self._transition("persisted-marker")
        """,
    )
    assert active == []
