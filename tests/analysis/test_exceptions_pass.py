"""Exception-classification audit: raises must be registered in the table."""

from __future__ import annotations

import textwrap

from repro.analysis.core import Project, run_passes
from repro.analysis.exceptions import ExceptionClassificationPass


def _project(tmp_path, files: dict[str, str]) -> Project:
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return Project(tmp_path, relative_roots=("pkg",))


def _run(project):
    active, _ = run_passes(
        project,
        [
            ExceptionClassificationPass(
                table_module="pkg/retry.py", scope_prefix="pkg/"
            )
        ],
    )
    return active


TABLE = """
EXCEPTION_CLASSIFICATION = {
    "WorkerUnavailable": "retryable",
    "ValueError": "fatal",
}
"""

ANNOTATED_TABLE = """
EXCEPTION_CLASSIFICATION: dict[str, str] = {
    "WorkerUnavailable": "retryable",
    "ValueError": "fatal",
}
"""


def test_unregistered_raise_is_flagged(tmp_path):
    project = _project(
        tmp_path,
        {
            "pkg/retry.py": TABLE,
            "pkg/store.py": "def f():\n    raise StoreConstraintError('dup')\n",
        },
    )
    active = _run(project)
    assert len(active) == 1
    assert active[0].rule == "exception-classification"
    assert "StoreConstraintError" in active[0].message


def test_registered_raise_is_clean(tmp_path):
    project = _project(
        tmp_path,
        {
            "pkg/retry.py": TABLE,
            "pkg/store.py": (
                "def f():\n"
                "    raise WorkerUnavailable(0, 'dead')\n"
                "def g():\n"
                "    raise ValueError('bad')\n"
            ),
        },
    )
    assert _run(project) == []


def test_annotated_assignment_table_is_found(tmp_path):
    # retry.py declares the table as ``NAME: dict[str, str] = {...}``.
    project = _project(
        tmp_path,
        {
            "pkg/retry.py": ANNOTATED_TABLE,
            "pkg/store.py": "def f():\n    raise WorkerUnavailable(0)\n",
        },
    )
    assert _run(project) == []


def test_missing_table_is_one_finding_at_the_table_module(tmp_path):
    project = _project(
        tmp_path,
        {
            "pkg/retry.py": "RETRYABLE = 'retryable'\n",
            "pkg/store.py": "def f():\n    raise ValueError('bad')\n",
        },
    )
    active = _run(project)
    assert len(active) == 1
    assert active[0].path == "pkg/retry.py"
    assert "not found" in active[0].message


def test_bare_reraise_and_variable_raise_pass_through(tmp_path):
    project = _project(
        tmp_path,
        {
            "pkg/retry.py": TABLE,
            "pkg/store.py": (
                "def f(last_error):\n"
                "    try:\n"
                "        pass\n"
                "    except Exception:\n"
                "        raise\n"
                "    raise last_error\n"
            ),
        },
    )
    assert _run(project) == []


def test_out_of_scope_raise_is_ignored(tmp_path):
    project = _project(
        tmp_path,
        {
            "pkg/retry.py": TABLE,
            "pkg/store.py": "x = 1\n",
            "other/mod.py": "def f():\n    raise Unregistered('x')\n",
        },
    )
    # other/ is outside scope_prefix (and outside the scanned roots).
    assert _run(project) == []


def test_live_tree_table_matches_runtime_classifier():
    """The statically-read table is the same object classify_error consults."""
    from pathlib import Path

    from repro.analysis.core import ModuleSource
    from repro.analysis.exceptions import registered_exceptions
    from repro.storage import retry

    root = Path(__file__).resolve().parents[2]
    module = ModuleSource.load(root / "src/repro/storage/retry.py", root)
    assert registered_exceptions(module) == set(retry.EXCEPTION_CLASSIFICATION)
