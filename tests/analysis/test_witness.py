"""Runtime lock-order witness: counts, cycle detection, delegation."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.witness import LockOrderViolation, WitnessedLockManager
from repro.storage.coordinator import LockManager


def tok(*parts):
    return tuple(parts)


def test_delegates_to_inner_manager():
    inner = LockManager()
    witness = WitnessedLockManager(inner)
    tokens = sorted([tok("key", "t", 1), tok("table-s", "t")], key=repr)
    held = witness.acquire(tokens)
    witness.release(held)
    assert witness.acquisitions == 2
    assert witness.out_of_order == 0
    witness.assert_clean()


def test_in_order_acquisitions_across_threads_are_clean():
    witness = WitnessedLockManager(LockManager())
    a, b, c = repr(tok("a",)), repr(tok("b",)), repr(tok("c",))
    witness._witness([a, b], ident=1)
    witness._witness([a, c], ident=2)
    assert witness.out_of_order == 0
    witness.assert_clean()


def test_out_of_order_acquire_is_counted():
    witness = WitnessedLockManager(LockManager())
    a, b = repr(tok("a",)), repr(tok("b",))
    witness._witness([b, a], ident=1)  # acquires b, then a while holding b
    assert witness.out_of_order == 1
    assert witness.out_of_order_pairs() == [(b, a)]
    with pytest.raises(LockOrderViolation):
        witness.assert_clean()


def test_cycle_forming_acquire_raises_immediately():
    witness = WitnessedLockManager(LockManager())
    a, b = repr(tok("a",)), repr(tok("b",))
    # Thread 1 takes a then b (edge a->b); thread 2 holds b and wants a:
    # the descending acquire closes the a<->b cycle — a real deadlock schedule.
    witness._witness([a, b], ident=1)
    with pytest.raises(LockOrderViolation, match="cycle-forming"):
        witness._witness([b, a], ident=2)


def test_release_forgets_held_tokens():
    inner = LockManager()
    witness = WitnessedLockManager(inner)
    first = witness.acquire([tok("key", "t", 1)])
    witness.release(first)
    # With nothing held, acquiring a lexically-smaller token is in order.
    witness.acquire([tok("key", "a", 1)])
    assert witness.out_of_order == 0


def test_real_threads_never_witness_false_positives():
    """Concurrent sorted acquisitions through real locks stay clean."""
    witness = WitnessedLockManager(LockManager())
    tokens = [tok("key", "account", index) for index in range(4)]

    def worker(offset: int) -> None:
        for round_index in range(20):
            pair = sorted(
                {tokens[offset], tokens[(offset + round_index) % 4]}, key=repr
            )
            held = witness.acquire(pair)
            witness.release(held)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert witness.out_of_order == 0
    witness.assert_clean()
