"""Property-based tests (hypothesis) on the core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.tuples import TupleId
from repro.core.strategies import FullReplication, HashPartitioning, LookupTablePartitioning
from repro.core.cost import transaction_partitions
from repro.explain.rules import decode_label
from repro.graph.assignment import PartitionAssignment
from repro.graph.model import Graph
from repro.graph.partitioner import PartitionerOptions, cut_weight, partition_graph, partition_weights
from repro.routing.lookup import BitArrayLookupTable, DictLookupTable
from repro.sqlparse.ast import SelectStatement, eq
from repro.workload.rwsets import access_from_tuple_sets
from repro.workload.trace import Transaction


# ---------------------------------------------------------------------------
# graph / partitioner invariants
# ---------------------------------------------------------------------------
graph_strategy = st.builds(
    lambda n, edges: (n, edges),
    st.integers(min_value=2, max_value=40),
    st.lists(
        st.tuples(st.integers(0, 39), st.integers(0, 39), st.floats(0.1, 5.0)),
        max_size=120,
    ),
)


def build_graph(spec) -> Graph:
    num_nodes, edges = spec
    graph = Graph()
    graph.add_nodes(num_nodes, 1.0)
    for u, v, weight in edges:
        if u < num_nodes and v < num_nodes and u != v:
            graph.add_edge(u, v, weight)
    return graph


@given(graph_strategy, st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_partitioner_assigns_every_node_a_valid_partition(spec, k):
    graph = build_graph(spec)
    assignment = partition_graph(graph, k, PartitionerOptions(seed=0, initial_trials=2))
    assert len(assignment) == graph.num_nodes
    assert all(0 <= part < k for part in assignment)


@given(graph_strategy)
@settings(max_examples=30, deadline=None)
def test_partitioner_balance_invariant_two_way(spec):
    graph = build_graph(spec)
    options = PartitionerOptions(seed=1, imbalance=0.05, initial_trials=2)
    assignment = partition_graph(graph, 2, options)
    weights = partition_weights(graph, assignment, 2)
    ideal = graph.total_node_weight() / 2
    max_node = max(graph.node_weights)
    assert max(weights) <= ideal * 1.05 + max_node + 1e-6


@given(graph_strategy)
@settings(max_examples=30, deadline=None)
def test_cut_weight_never_exceeds_total_edge_weight(spec):
    graph = build_graph(spec)
    assignment = partition_graph(graph, 3, PartitionerOptions(seed=2, initial_trials=2))
    assert 0.0 <= cut_weight(graph, assignment) <= graph.total_edge_weight() + 1e-9


# ---------------------------------------------------------------------------
# strategy invariants
# ---------------------------------------------------------------------------
tuple_ids = st.builds(
    TupleId,
    st.sampled_from(["alpha", "beta"]),
    st.tuples(st.integers(min_value=0, max_value=10_000)),
)


@given(tuple_ids, st.integers(min_value=1, max_value=16))
@settings(max_examples=80, deadline=None)
def test_hash_partitioning_is_deterministic_and_in_range(tuple_id, k):
    strategy = HashPartitioning(k)
    placement = strategy.partitions_for_tuple(tuple_id)
    assert placement == strategy.partitions_for_tuple(tuple_id)
    assert len(placement) == 1
    assert all(0 <= partition < k for partition in placement)


@given(st.lists(tuple_ids, min_size=1, max_size=8, unique=True), st.integers(2, 8))
@settings(max_examples=60, deadline=None)
def test_full_replication_reads_are_never_distributed(ids, k):
    strategy = FullReplication(k)
    access = access_from_tuple_sets(
        Transaction((SelectStatement(("alpha",), where=eq("id", 0)),)), ids, []
    )
    assert len(transaction_partitions(strategy, access)) == 1


@given(st.lists(tuple_ids, min_size=1, max_size=8, unique=True), st.integers(2, 8))
@settings(max_examples=60, deadline=None)
def test_transaction_partitions_subset_of_tuple_placements(ids, k):
    strategy = HashPartitioning(k)
    access = access_from_tuple_sets(
        Transaction((SelectStatement(("alpha",), where=eq("id", 0)),)), ids, ids
    )
    involved = transaction_partitions(strategy, access)
    union = set()
    for tuple_id in ids:
        union.update(strategy.partitions_for_tuple(tuple_id))
    assert involved <= union
    assert involved  # never empty for a non-empty access


# ---------------------------------------------------------------------------
# lookup table invariants
# ---------------------------------------------------------------------------
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=2000),
        st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=3),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_lookup_backends_agree_with_assignment(mapping):
    assignment = PartitionAssignment(8)
    for key, partitions in mapping.items():
        assignment.assign(TupleId("t", (key,)), partitions)
    exact = DictLookupTable(8).load(assignment)
    bits = BitArrayLookupTable(8).load(assignment)
    for key, partitions in mapping.items():
        tuple_id = TupleId("t", (key,))
        assert exact.get(tuple_id) == frozenset(partitions)
        looked_up = bits.get(tuple_id)
        assert looked_up is not None
        assert looked_up == frozenset(partitions) or looked_up <= frozenset(partitions)
    strategy = LookupTablePartitioning(8, assignment)
    for key, partitions in mapping.items():
        assert strategy.partitions_for_tuple(TupleId("t", (key,))) == frozenset(partitions)


# ---------------------------------------------------------------------------
# label round trip
# ---------------------------------------------------------------------------
@given(st.sets(st.integers(min_value=0, max_value=31), min_size=1, max_size=6))
@settings(max_examples=100, deadline=None)
def test_replication_label_roundtrip(partitions):
    assignment = PartitionAssignment(32)
    tuple_id = TupleId("t", (1,))
    assignment.assign(tuple_id, partitions)
    label = assignment.replication_label(tuple_id)
    assert decode_label(label) == frozenset(partitions)
