"""Replication-aware online placement: read-hot drift ends in replica sets.

Acceptance criteria: after a read-hot drift, the replication-aware budgeted
adaptation (a) replicates the read-hot tuples, (b) keeps charging writes on
every replica (replication never makes writes free), (c) cuts the
distributed fraction of the drifted traffic at least 5x within a bounded
migration budget, and (d) is byte-deterministic across processes and across
the numpy/list array backends.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.catalog.tuples import TupleId
from repro.core.cost import transaction_partitions
from repro.core.schism import Schism, SchismOptions, start_online
from repro.experiments.online_drift import run_read_hot_drift
from repro.online import MonitorOptions, OnlineOptions, RepartitionOptions
from repro.sqlparse.ast import SelectStatement, UpdateStatement, eq
from repro.workload.rwsets import extract_access_trace
from repro.workload.trace import StatementAccess, Transaction, TransactionAccess
from repro.workloads import generate_read_hot_skew

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

SMALL = dict(
    num_partitions=2,
    num_rows=400,
    transactions_per_phase=300,
    num_hot=4,
    migration_budget=60.0,
    seed=0,
)


@pytest.fixture(scope="module")
def acceptance_report():
    """The experiment at its documented defaults (the acceptance scenario)."""
    return run_read_hot_drift()


@pytest.fixture(scope="module")
def adapted_controller():
    """A small read-hot scenario run through the controller, post-adaptation."""
    bundle = generate_read_hot_skew(
        num_rows=SMALL["num_rows"],
        transactions_per_phase=SMALL["transactions_per_phase"],
        num_hot=SMALL["num_hot"],
        seed=SMALL["seed"],
    )
    database = bundle.database
    offline = Schism(SchismOptions(num_partitions=SMALL["num_partitions"])).run(
        database, bundle.training
    )
    options = OnlineOptions(
        monitor=MonitorOptions(window_size=200, min_window_fill=50),
        repartition=RepartitionOptions(
            migration_cost_weight=0.25,
            imbalance=0.10,
            max_passes=12,
            migration_budget=SMALL["migration_budget"],
        ),
        batch_size=50,
        replication_min_read_fraction=0.85,
    )
    controller = start_online(offline, database, options)
    controller.observe(extract_access_trace(database, bundle.phases[1]), auto_adapt=False)
    record = controller.adapt()
    return controller, bundle, record


def test_distributed_fraction_drops_at_least_5x(acceptance_report):
    assert acceptance_report.drift_detected
    assert acceptance_report.improvement >= 5.0


def test_migration_budget_respected(acceptance_report):
    assert acceptance_report.migration_cost <= acceptance_report.migration_budget


def test_hot_tuples_end_replicated(acceptance_report):
    assert acceptance_report.hot_replicated >= acceptance_report.num_hot - 1
    assert acceptance_report.replica_copies > 0


def test_small_scenario_replicates_hot_tuples(adapted_controller):
    controller, bundle, record = adapted_controller
    assignment = controller.strategy.assignment
    replicated = [
        key
        for key in bundle.metadata["hot_keys"]
        if assignment.is_replicated(TupleId("usertable", (key,)))
    ]
    assert len(replicated) == SMALL["num_hot"]
    assert record.replicated_count >= SMALL["num_hot"]


def test_replicas_physically_resident(adapted_controller):
    controller, bundle, _ = adapted_controller
    for key in bundle.metadata["hot_keys"]:
        tuple_id = TupleId("usertable", (key,))
        placement = controller.strategy.assignment.partitions_of(tuple_id)
        assert placement is not None and len(placement) > 1
        for partition in placement:
            assert controller.cluster.has_tuple(tuple_id, partition)
        # The router's lookup table answers the same replica set.
        assert controller.router.lookup_table.get(tuple_id) == placement


def test_monitor_observed_read_hotness(adapted_controller, acceptance_report):
    """The monitor's decayed read/write split identifies the hot tuples."""
    controller, bundle, _ = adapted_controller
    monitor = controller.monitor
    for key in bundle.metadata["hot_keys"]:
        tuple_id = TupleId("usertable", (key,))
        assert monitor.read_count(tuple_id) > monitor.write_count(tuple_id)
        assert monitor.read_fraction(tuple_id) >= 0.8
    # An unseen tuple must not look replication-worthy.
    assert monitor.read_fraction(TupleId("usertable", (10**9,))) == 0.0
    assert acceptance_report.monitor_hot_read_fraction >= 0.9


def test_writes_still_charged_on_every_replica(adapted_controller):
    """Replication makes reads local; writes must keep touching all replicas."""
    controller, bundle, _ = adapted_controller
    key = bundle.metadata["hot_keys"][0]
    tuple_id = TupleId("usertable", (key,))
    placement = controller.strategy.partitions_for_tuple(tuple_id)
    assert len(placement) > 1
    write = UpdateStatement("usertable", {"field0": 1}, where=eq("ycsb_key", key))
    read = SelectStatement(("usertable",), where=eq("ycsb_key", key))
    write_access = TransactionAccess(
        Transaction((write,)),
        (StatementAccess(write, frozenset(), frozenset({tuple_id})),),
    )
    read_access = TransactionAccess(
        Transaction((read,)),
        (StatementAccess(read, frozenset({tuple_id}), frozenset()),),
    )
    # A write involves every replica (consistency); a lone read exactly one.
    assert transaction_partitions(controller.strategy, write_access) == placement
    assert len(transaction_partitions(controller.strategy, read_access)) == 1


def test_retention_hysteresis_keeps_paid_for_replicas(adapted_controller):
    """A replicated tuple missing the entry bar is retained at the lower bar.

    Raising the entry threshold above every tuple's read fraction models the
    decay-noise dip: with retention slack the replicas survive the next
    adaptation; the slack is what separates "keep" from "drop/re-copy churn".
    """
    controller, bundle, _ = adapted_controller
    hot_ids = [TupleId("usertable", (key,)) for key in bundle.metadata["hot_keys"]]
    assignment = controller.strategy.assignment
    assert all(assignment.is_replicated(tuple_id) for tuple_id in hot_ids)
    # No hot tuple passes an impossible entry bar...
    controller.options.replication_min_read_fraction = 1.0
    # ...but generous retention slack keeps the already-replicated ones in.
    controller.options.replication_retention_slack = 0.2
    candidates = set(controller.replication_candidates())
    for tuple_id in hot_ids:
        assert controller.maintainer.node_of(tuple_id) in candidates
    controller.adapt()
    assignment = controller.strategy.assignment
    assert all(assignment.is_replicated(tuple_id) for tuple_id in hot_ids)
    # Without the slack, the filter collapses them (the churn the hysteresis
    # exists to prevent).
    controller.options.replication_retention_slack = 0.0
    controller.adapt()
    assignment = controller.strategy.assignment
    assert not any(assignment.is_replicated(tuple_id) for tuple_id in hot_ids)


_DETERMINISM_SCRIPT = """
from repro.core.schism import Schism, SchismOptions, start_online
from repro.online import MonitorOptions, OnlineOptions, RepartitionOptions
from repro.workload.rwsets import extract_access_trace
from repro.workloads import generate_read_hot_skew

bundle = generate_read_hot_skew(num_rows=400, transactions_per_phase=300, num_hot=4, seed=0)
database = bundle.database
offline = Schism(SchismOptions(num_partitions=2)).run(database, bundle.training)
options = OnlineOptions(
    monitor=MonitorOptions(window_size=200, min_window_fill=50),
    repartition=RepartitionOptions(
        migration_cost_weight=0.25, imbalance=0.10, max_passes=12, migration_budget=60.0
    ),
    batch_size=50,
    replication_min_read_fraction=0.85,
)
controller = start_online(offline, database, options)
controller.observe(extract_access_trace(database, bundle.phases[1]), auto_adapt=False)
controller.adapt()
placements = sorted(
    (tuple_id, tuple(sorted(placement)))
    for tuple_id, placement in controller.strategy.assignment.placements.items()
)
print(repr(placements))
"""


def _run_scenario_subprocess(backend: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    env["REPRO_ARRAY_BACKEND"] = backend
    env.pop("PYTHONHASHSEED", None)  # fresh salted hashing per process
    result = subprocess.run(
        [sys.executable, "-c", _DETERMINISM_SCRIPT],
        capture_output=True,
        env=env,
        check=True,
    )
    return result.stdout


def test_byte_deterministic_across_processes_and_backends():
    """Two fresh processes — one per array backend — produce identical placements."""
    try:
        import numpy  # noqa: F401

        backends = ("numpy", "list")
    except ImportError:
        backends = ("list", "list")
    first = _run_scenario_subprocess(backends[0])
    second = _run_scenario_subprocess(backends[1])
    assert first == second
    assert b"usertable" in first
