"""Unit tests for the streaming workload monitor."""

from __future__ import annotations

import pytest

from repro.catalog.tuples import TupleId
from repro.core.strategies import LookupTablePartitioning
from repro.graph.assignment import PartitionAssignment
from repro.online.monitor import MonitorOptions, WorkloadMonitor
from repro.workload.rwsets import access_from_tuple_sets
from repro.workload.trace import Transaction
from repro.sqlparse.ast import SelectStatement


def _access(keys, write_keys=(), txn_id=0):
    transaction = Transaction(
        (SelectStatement(("t",)),), transaction_id=txn_id
    )
    return access_from_tuple_sets(
        transaction,
        [TupleId("t", (key,)) for key in keys],
        [TupleId("t", (key,)) for key in write_keys],
    )


def _strategy(num_partitions=2, placements=None):
    assignment = PartitionAssignment(num_partitions)
    for key, partition in (placements or {}).items():
        assignment.assign(TupleId("t", (key,)), {partition})
    return LookupTablePartitioning(num_partitions, assignment, "hash")


def test_window_distributed_fraction():
    strategy = _strategy(2, {0: 0, 1: 0, 2: 1})
    monitor = WorkloadMonitor(MonitorOptions(window_size=10), strategy)
    monitor.ingest(_access([0, 1]))  # local
    monitor.ingest(_access([0, 2]))  # distributed
    stats = monitor.window_stats()
    assert stats.transactions == 2
    assert stats.distributed_fraction == 0.5
    assert stats.load_skew > 1.0


def test_window_eviction_keeps_counters_consistent():
    strategy = _strategy(2, {0: 0, 1: 1})
    monitor = WorkloadMonitor(MonitorOptions(window_size=2), strategy)
    monitor.ingest(_access([0, 1]))  # distributed
    monitor.ingest(_access([0]))
    monitor.ingest(_access([0]))  # evicts the distributed one
    stats = monitor.window_stats()
    assert stats.transactions == 2
    assert stats.distributed_fraction == 0.0


def test_decayed_counts_and_hot_set():
    monitor = WorkloadMonitor(MonitorOptions(decay=0.5, hot_set_size=2))
    monitor.ingest(_access([1]))
    monitor.ingest(_access([1]))
    monitor.ingest(_access([2]))
    monitor.advance_epoch()
    monitor.ingest(_access([3]))
    # Tuple 1: 2 accesses decayed once = 1.0; tuple 3: fresh = 1.0; tuple 2: 0.5.
    assert monitor.access_count(TupleId("t", (1,))) == pytest.approx(1.0)
    assert monitor.access_count(TupleId("t", (2,))) == pytest.approx(0.5)
    assert monitor.access_count(TupleId("t", (3,))) == pytest.approx(1.0)
    # Deterministic tie-break: equal counts rank by tuple id.
    assert monitor.hot_tuples() == (TupleId("t", (1,)), TupleId("t", (3,)))


def test_renormalisation_preserves_relative_counts():
    monitor = WorkloadMonitor(MonitorOptions(decay=0.5))
    monitor.ingest(_access([1]))
    monitor.ingest(_access([1]))
    monitor.ingest(_access([2]))
    for _ in range(60):  # decay far past the renormalisation limit
        monitor.advance_epoch()
    monitor.ingest(_access([3]))
    assert monitor.access_count(TupleId("t", (3,))) == pytest.approx(1.0)
    # Tuple 1 decayed to ~2*2^-60 but is still ranked above tuple 2.
    hot = monitor.hot_tuples()
    assert hot.index(TupleId("t", (3,))) == 0


def test_drift_requires_window_fill():
    strategy = _strategy(2, {0: 0, 1: 1})
    monitor = WorkloadMonitor(
        MonitorOptions(window_size=100, min_window_fill=50), strategy
    )
    for _ in range(10):
        monitor.ingest(_access([0, 1]))
    report = monitor.check_drift()
    assert not report.drifted


def test_drift_on_distributed_fraction_increase():
    strategy = _strategy(2, {0: 0, 1: 0, 2: 1})
    monitor = WorkloadMonitor(
        MonitorOptions(window_size=100, min_window_fill=10), strategy
    )
    for _ in range(20):
        monitor.ingest(_access([0, 1]))
    monitor.set_baseline()
    for _ in range(30):
        monitor.ingest(_access([0, 2]))
    report = monitor.check_drift()
    assert report.drifted
    assert any("distributed fraction" in reason for reason in report.reasons)


def test_drift_on_hot_tuple_churn():
    strategy = _strategy(2, {key: 0 for key in range(40)})
    options = MonitorOptions(
        window_size=200,
        min_window_fill=10,
        hot_set_size=4,
        decay=0.5,
        drift_distributed_increase=2.0,  # disable the other signals
        drift_skew_threshold=100.0,
        drift_churn_threshold=0.5,
    )
    monitor = WorkloadMonitor(options, strategy)
    for key in (0, 1, 2, 3) * 5:
        monitor.ingest(_access([key]))
    monitor.set_baseline()
    for _ in range(8):
        monitor.advance_epoch()
    for key in (10, 11, 12, 13) * 5:
        monitor.ingest(_access([key]))
    report = monitor.check_drift()
    assert report.drifted
    assert any("churn" in reason for reason in report.reasons)


def test_rebaseline_reattributes_window():
    # Initially tuples 0/1 are split -> every transaction distributed.
    split = _strategy(2, {0: 0, 1: 1})
    # Skew is out of scope here: with both tuples co-located on one of two
    # partitions the load is (correctly) maximally skewed.
    monitor = WorkloadMonitor(
        MonitorOptions(window_size=50, min_window_fill=5, drift_skew_threshold=100.0),
        split,
    )
    for _ in range(20):
        monitor.ingest(_access([0, 1]))
    assert monitor.window_stats().distributed_fraction == 1.0
    # After "migration" co-locates them, rebaseline re-attributes the window.
    colocated = _strategy(2, {0: 0, 1: 0})
    monitor.rebaseline(colocated)
    stats = monitor.window_stats()
    assert stats.distributed_fraction == 0.0
    assert not monitor.check_drift().drifted


def test_ingest_batch_advances_epoch():
    monitor = WorkloadMonitor(MonitorOptions(decay=0.5))
    monitor.ingest_batch([_access([1])])
    assert monitor.epochs == 1
    assert monitor.access_count(TupleId("t", (1,))) == pytest.approx(0.5)


def test_min_window_fill_clamped_to_window_size():
    # A fill requirement above capacity would disable drift detection forever.
    options = MonitorOptions(window_size=40, min_window_fill=50)
    assert options.min_window_fill == 40
    strategy = _strategy(2, {0: 0, 1: 1})
    monitor = WorkloadMonitor(options, strategy)
    for _ in range(40):
        monitor.ingest(_access([0, 1]))
    # The full (small) window satisfies the clamped fill gate.
    assert "window not yet filled" not in monitor.check_drift().reasons


def test_inherently_skewed_baseline_does_not_refire_skew_drift():
    # Everything lives on partition 0 of 4: maximally skewed, but stable.
    strategy = _strategy(4, {0: 0, 1: 0})
    monitor = WorkloadMonitor(
        MonitorOptions(window_size=50, min_window_fill=5), strategy
    )
    for _ in range(20):
        monitor.ingest(_access([0, 1]))
    monitor.set_baseline()
    for _ in range(20):
        monitor.ingest(_access([0, 1]))
    report = monitor.check_drift()
    # Skew (4.0) exceeds the absolute threshold but not the baseline: no drift.
    assert report.stats.load_skew > monitor.options.drift_skew_threshold
    assert not report.drifted


def test_skew_drift_fires_on_increase_over_baseline():
    strategy = _strategy(4, {0: 0, 1: 1, 2: 0})
    monitor = WorkloadMonitor(
        MonitorOptions(window_size=40, min_window_fill=5), strategy
    )
    for _ in range(20):
        monitor.ingest(_access([0]))
        monitor.ingest(_access([1]))
    monitor.set_baseline()  # balanced-ish baseline (skew 2.0 over 4 parts)
    for _ in range(40):
        monitor.ingest(_access([0, 2]))  # all load collapses onto partition 0
    report = monitor.check_drift()
    assert report.drifted
    assert any("load skew" in reason for reason in report.reasons)


def test_empty_baseline_is_adopted_from_first_filled_window():
    """A baseline snapshot of an empty window (cold deploy, no warm-up) is
    replaced by the first filled window instead of reading steady traffic as
    drift against zeros."""
    strategy = _strategy(2, {0: 0, 1: 0, 2: 1})
    monitor = WorkloadMonitor(
        MonitorOptions(window_size=10, min_window_fill=4), strategy
    )
    monitor.set_baseline()  # empty window: nothing learned yet
    for _ in range(4):
        monitor.ingest(_access([0, 2]))  # 100% distributed
    # Enough for a drift check, but the baseline waits for a *full* window.
    report = monitor.check_drift()
    assert not report.drifted
    assert report.reasons == ["baseline pending a full window"]
    for _ in range(6):
        monitor.ingest(_access([0, 2]))
    report = monitor.check_drift()
    assert not report.drifted
    assert report.reasons == ["baseline adopted from first full window"]
    # The adopted baseline now carries the observed fraction: steady traffic
    # at the same rate is not drift.
    for _ in range(10):
        monitor.ingest(_access([0, 2]))
    assert not monitor.check_drift().drifted


def test_small_real_warmup_baseline_is_kept():
    """A baseline from a small-but-nonempty warm-up window is genuine signal:
    the cold-deploy guard must not overwrite it, so drift against it is
    still detected once the window fills."""
    strategy = _strategy(2, {0: 0, 1: 0, 2: 1})
    monitor = WorkloadMonitor(
        MonitorOptions(window_size=10, min_window_fill=4), strategy
    )
    monitor.ingest(_access([0, 1]))  # local traffic only
    monitor.set_baseline()  # 1 transaction < min_window_fill, but real
    for _ in range(6):
        monitor.ingest(_access([0, 2]))  # drift: all distributed
    report = monitor.check_drift()
    assert report.drifted
    assert any("distributed fraction" in reason for reason in report.reasons)


# -- auto-derived churn weight-share threshold ---------------------------------------
def test_churn_threshold_explicit_option_wins():
    monitor = WorkloadMonitor(
        MonitorOptions(drift_churn_min_weight_share=0.42), _strategy()
    )
    assert monitor.churn_weight_share_threshold() == 0.42


def test_churn_threshold_floor_before_any_traffic():
    monitor = WorkloadMonitor(MonitorOptions(), _strategy())
    assert monitor.churn_weight_share_threshold() == MonitorOptions().drift_churn_share_floor


def test_churn_threshold_tracks_uniform_expectation():
    options = MonitorOptions(window_size=400, hot_set_size=4)
    monitor = WorkloadMonitor(options, _strategy(2, {k: 0 for k in range(20)}))
    for key in range(20):
        monitor.ingest(_access([key]))
    # 20 tracked tuples, hot set 4: uniform expectation 0.2, lifted 1.25x.
    assert monitor.churn_weight_share_threshold() == pytest.approx(0.25)
    # Under perfectly uniform traffic the hot set carries exactly the
    # uniform expectation — strictly below the lifted bar, so the churn
    # gate stays closed no matter how the hot-set *membership* drifts.
    assert monitor.hot_weight_share() == pytest.approx(0.2)
    assert monitor.hot_weight_share() < monitor.churn_weight_share_threshold()


def test_churn_threshold_floor_on_wide_populations():
    options = MonitorOptions(window_size=2000, hot_set_size=4)
    monitor = WorkloadMonitor(options, _strategy(2, {k: 0 for k in range(100)}))
    for key in range(100):
        monitor.ingest(_access([key]))
    # 4/100 lifted is 0.05 — below the floor, so the old 10% bar holds.
    assert monitor.churn_weight_share_threshold() == pytest.approx(
        options.drift_churn_share_floor
    )


def test_churn_threshold_capped_for_tiny_populations():
    options = MonitorOptions(window_size=100, hot_set_size=4)
    monitor = WorkloadMonitor(options, _strategy(2, {k: 0 for k in range(4)}))
    for key in range(4):
        monitor.ingest(_access([key]))
    # hot_set_size >= tracked: the uncapped bar would be 1.25 — unreachable.
    assert monitor.churn_weight_share_threshold() == pytest.approx(0.95)


def test_skewed_traffic_clears_the_derived_bar():
    options = MonitorOptions(
        window_size=400,
        min_window_fill=10,
        hot_set_size=4,
        drift_distributed_increase=2.0,
        drift_skew_threshold=100.0,
        drift_churn_threshold=0.5,
    )
    monitor = WorkloadMonitor(options, _strategy(2, {k: 0 for k in range(40)}))
    # Baseline: tuples 0..3 hot, with the rest seen once (tracked = 20).
    for key in range(16, 32):
        monitor.ingest(_access([key]))
    for key in (0, 1, 2, 3) * 20:
        monitor.ingest(_access([key]))
    monitor.set_baseline()
    # New hot set 10..13 dominates the window: the share clears the bar and
    # the membership churn (Jaccard 0 vs baseline) fires the signal.
    for key in (10, 11, 12, 13) * 30:
        monitor.ingest(_access([key]))
    assert monitor.hot_weight_share() > monitor.churn_weight_share_threshold()
    report = monitor.check_drift()
    assert report.drifted
    assert any("churn" in reason for reason in report.reasons)


def test_uniform_churn_does_not_fire_derived_gate():
    options = MonitorOptions(
        window_size=400,
        min_window_fill=10,
        hot_set_size=4,
        drift_distributed_increase=2.0,
        drift_skew_threshold=100.0,
        drift_churn_threshold=0.5,
    )
    monitor = WorkloadMonitor(options, _strategy(2, {k: 0 for k in range(40)}))
    # Uniform traffic over 20 tuples; the "hot set" is sampling noise.
    for key in list(range(20)) * 3:
        monitor.ingest(_access([key]))
    monitor.set_baseline()
    # Entirely different — but still uniform — tuples: membership churn is
    # total, yet no hot set exists, so the weight-share gate must block it.
    for key in list(range(20, 40)) * 3:
        monitor.ingest(_access([key]))
    report = monitor.check_drift()
    assert not any("churn" in reason for reason in report.reasons)


def test_churn_option_validation():
    with pytest.raises(ValueError):
        MonitorOptions(drift_churn_share_floor=-0.1)
    with pytest.raises(ValueError):
        MonitorOptions(drift_churn_share_lift=0.0)
    with pytest.raises(ValueError):
        MonitorOptions(drift_churn_min_weight_share=1.5)
