"""Unit tests for the budgeted re-partitioner and label alignment."""

from __future__ import annotations

import pytest

from repro.graph.model import Graph
from repro.graph.refine import cut_weight_two_way
from repro.online.repartitioner import (
    BudgetedRepartitioner,
    RepartitionOptions,
    align_partition_labels,
    repartition_from_scratch,
)


def _two_cliques(crossing_weight=0.0):
    """Two 3-cliques (nodes 0-2 and 3-5), optionally weakly connected."""
    graph = Graph()
    graph.add_nodes(6)
    for group in ((0, 1, 2), (3, 4, 5)):
        for i in group:
            for j in group:
                if i < j:
                    graph.add_edge(i, j, 10.0)
    if crossing_weight:
        graph.add_edge(2, 3, crossing_weight)
    return graph.freeze()


def test_already_optimal_assignment_is_untouched():
    csr = _two_cliques()
    warm = [0, 0, 0, 1, 1, 1]
    result = BudgetedRepartitioner().repartition(csr, warm, 2)
    assert result.assignment == warm
    assert result.num_moved == 0
    assert result.migration_cost == 0.0
    assert result.cut_after == 0.0
    assert warm == [0, 0, 0, 1, 1, 1]  # input not mutated


def test_misplaced_node_moves_home():
    csr = _two_cliques()
    warm = [0, 0, 1, 1, 1, 1]  # node 2 stranded with the wrong clique
    result = BudgetedRepartitioner().repartition(csr, warm, 2)
    assert result.assignment == [0, 0, 0, 1, 1, 1]
    assert result.moved_nodes == [2]
    assert result.migration_cost == 1.0
    assert result.cut_before == 20.0
    assert result.cut_after == 0.0


def test_migration_cost_weight_blocks_marginal_moves():
    # Moving node 2 gains only 2.0 of cut; with a high enough charge the
    # re-partitioner correctly refuses to migrate it.
    graph = Graph()
    graph.add_nodes(4)
    graph.add_edge(0, 1, 2.0)
    graph.add_edge(2, 3, 2.0)
    graph.add_edge(1, 2, 1.0)
    csr = graph.freeze()
    warm = [0, 0, 1, 1]
    cheap = BudgetedRepartitioner(
        RepartitionOptions(migration_cost_weight=10.0)
    ).repartition(csr, warm, 2)
    assert cheap.num_moved == 0


def test_budget_caps_total_moves():
    # Three independent stranded nodes but budget for only one move.
    graph = Graph()
    graph.add_nodes(12)
    pairs = [(0, 6), (1, 7), (2, 8)]
    for u, v in pairs:
        graph.add_edge(u, v, 5.0)
    csr = graph.freeze()
    # u-nodes on partition 0, their partners on partition 1.
    warm = [0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1]
    options = RepartitionOptions(migration_cost_weight=0.1, migration_budget=1.0)
    result = BudgetedRepartitioner(options).repartition(csr, warm, 2)
    assert result.num_moved == 1
    assert result.migration_cost == 1.0
    unlimited = BudgetedRepartitioner(
        RepartitionOptions(migration_cost_weight=0.1)
    ).repartition(csr, warm, 2)
    assert unlimited.num_moved == 3


def test_returning_home_refunds_cost():
    csr = _two_cliques()
    warm = [0, 0, 1, 1, 1, 1]
    options = RepartitionOptions(migration_cost_weight=0.25)
    result = BudgetedRepartitioner(options).repartition(csr, warm, 2)
    # Only node 2 is off; the cost ledger equals the final displacement, not
    # the number of intermediate moves.
    assert result.migration_cost == float(result.num_moved)


def test_balance_repair_handles_overweight_warm_start():
    graph = Graph()
    for _ in range(8):
        graph.add_node(1.0)
    csr = graph.freeze()
    warm = [0] * 8  # everything on one partition
    options = RepartitionOptions(imbalance=0.1)
    result = BudgetedRepartitioner(options).repartition(csr, warm, 2)
    weights = [result.assignment.count(part) for part in range(2)]
    assert max(weights) <= 5  # 8/2 * 1.1 + max node weight


def test_move_costs_respected():
    csr = _two_cliques()
    warm = [0, 0, 1, 1, 1, 1]
    # Node 2 is huge: moving it costs 100, over budget.
    costs = [1.0, 1.0, 100.0, 1.0, 1.0, 1.0]
    options = RepartitionOptions(migration_cost_weight=0.01, migration_budget=50.0)
    result = BudgetedRepartitioner(options).repartition(csr, warm, 2, costs)
    assert 2 not in result.moved_nodes


def test_warm_assignment_length_validated():
    csr = _two_cliques()
    with pytest.raises(ValueError):
        BudgetedRepartitioner().repartition(csr, [0, 1], 2)


def test_align_partition_labels_undoes_permutation():
    reference = [0, 0, 1, 1, 2, 2]
    permuted = [2, 2, 0, 0, 1, 1]
    aligned = align_partition_labels(permuted, reference, 3)
    assert aligned == reference


def test_align_partition_labels_partial_overlap():
    reference = [0, 0, 0, 1, 1, 1]
    candidate = [1, 1, 0, 0, 0, 0]
    aligned = align_partition_labels(candidate, reference, 2)
    # Label 0 (4 nodes, mostly old partition 1... overlaps: new0/old1=3,
    # new0/old0=1, new1/old0=2) -> new0->1, new1->0.
    assert aligned == [0, 0, 1, 1, 1, 1]


def test_repartition_from_scratch_aligns_labels():
    csr = _two_cliques(crossing_weight=0.5)
    current = [1, 1, 1, 0, 0, 0]
    result = repartition_from_scratch(csr, current, 2)
    # The fresh cut is the two cliques; after alignment it matches the
    # current placement exactly, so no tuples would move.
    assert result.assignment == current
    assert result.num_moved == 0
    assert result.cut_after == cut_weight_two_way(csr, result.assignment)
