"""Unit tests for migration planning, execution, and the routing swap."""

from __future__ import annotations

import pytest

from repro.catalog.tuples import TupleId
from repro.core.strategies import LookupTablePartitioning
from repro.distributed.cluster import Cluster
from repro.graph.assignment import PartitionAssignment
from repro.online.migration import LiveMigrator, plan_migration
from repro.routing.lookup import build_lookup_table
from repro.routing.router import Router


def _assignment(num_partitions, placements):
    assignment = PartitionAssignment(num_partitions)
    for key, partitions in placements.items():
        assignment.assign(TupleId("account", (key,)), partitions)
    return assignment


def test_plan_diffs_only_changed_tuples():
    old = _assignment(2, {1: {0}, 2: {0}, 3: {1}})
    new = _assignment(2, {1: {0}, 2: {1}, 3: {1}})
    plan = plan_migration(old.partitions_of, new)
    assert plan.tuples_changed == 1
    assert plan.tuples_moved == 1
    assert plan.tuples_replicated == 0
    assert [step.action for step in plan.steps] == ["copy", "drop"]
    copy, drop = plan.steps
    assert copy.tuple_id == TupleId("account", (2,))
    assert (copy.source, copy.target) == (0, 1)
    assert (drop.tuple_id, drop.source) == (TupleId("account", (2,)), 0)


def test_plan_widening_replication_has_no_drops():
    old = _assignment(2, {1: {0}})
    new = _assignment(2, {1: {0, 1}})
    plan = plan_migration(old.partitions_of, new)
    assert plan.tuples_replicated == 1
    assert plan.tuples_moved == 0
    assert len(plan.copies) == 1 and not plan.drops


def test_plan_orders_all_copies_before_all_drops():
    old = _assignment(2, {1: {0}, 2: {1}})
    new = _assignment(2, {1: {1}, 2: {0}})
    plan = plan_migration(old.partitions_of, new)
    actions = [step.action for step in plan.steps]
    assert actions == ["copy", "copy", "drop", "drop"]


def test_plan_unknown_current_placement_raises():
    new = _assignment(2, {1: {0}})
    with pytest.raises(ValueError):
        plan_migration(lambda tuple_id: frozenset(), new)


def test_executor_moves_rows_and_counts_messages(bank_database):
    old = _assignment(2, {1: {0}, 2: {0}, 3: {0}, 4: {1}, 5: {1}})
    strategy = LookupTablePartitioning(2, old, "hash")
    cluster = Cluster.from_database(bank_database, strategy)
    new = _assignment(2, {1: {0}, 2: {1}, 3: {0}, 4: {1}, 5: {0, 1}})
    plan = plan_migration(strategy.partitions_for_tuple, new)
    migrator = LiveMigrator(cluster, batch_size=1)
    report = migrator.execute(plan)
    assert report.copies == 2  # tuple 2 moved, tuple 5 replicated
    assert report.drops == 1
    assert report.skipped == 0
    # 2 messages per source read + 2 per target write + 2 per drop.
    assert report.messages == 2 * (2 + 2) + 2
    assert report.bytes_copied > 0
    assert report.progress[-1] == (2, 1)
    # Physical placement matches the new assignment.
    assert cluster.database(1).get_row(TupleId("account", (2,))) is not None
    assert cluster.database(0).get_row(TupleId("account", (2,))) is None
    assert cluster.database(0).get_row(TupleId("account", (5,))) is not None
    assert cluster.database(1).get_row(TupleId("account", (5,))) is not None


def test_executor_is_idempotent(bank_database):
    old = _assignment(2, {1: {0}, 2: {0}, 3: {0}, 4: {1}, 5: {1}})
    strategy = LookupTablePartitioning(2, old, "hash")
    cluster = Cluster.from_database(bank_database, strategy)
    new = _assignment(2, {2: {1}})
    plan = plan_migration(strategy.partitions_for_tuple, new)
    migrator = LiveMigrator(cluster)
    migrator.execute(plan)
    report = migrator.execute(plan)  # replay: copy finds row gone from source
    assert report.copies == 0
    assert report.drops == 0
    assert report.skipped == 2
    assert cluster.database(1).get_row(TupleId("account", (2,))) is not None


def test_swap_routing_is_atomic_and_complete(bank_database):
    old = _assignment(2, {key: {0} for key in (1, 2, 3)} | {4: {1}, 5: {1}})
    strategy = LookupTablePartitioning(2, old, "hash")
    cluster = Cluster.from_database(bank_database, strategy)
    router = Router(strategy, bank_database.schema, build_lookup_table(old))
    old_table = router.lookup_table
    new = _assignment(2, {1: {1}, 2: {0}, 3: {0}, 4: {1}, 5: {1}})
    plan = plan_migration(strategy.partitions_for_tuple, new)
    migrator = LiveMigrator(cluster)
    report = migrator.execute(plan)
    migrator.swap_routing(router, new, report)
    assert report.lookup_swapped
    assert router.lookup_table is not old_table
    assert router.strategy.assignment is new
    assert router.lookup_table.get(TupleId("account", (1,))) == {1}
    # The old table object is untouched (readers mid-flight see a consistent view).
    assert old_table.get(TupleId("account", (1,))) == {0}


def test_executor_partition_mismatch(bank_database):
    old = _assignment(2, {1: {0}})
    strategy = LookupTablePartitioning(2, old, "hash")
    cluster = Cluster.from_database(bank_database, strategy)
    plan = plan_migration(strategy.partitions_for_tuple, _assignment(3, {1: {2}}))
    with pytest.raises(ValueError):
        LiveMigrator(cluster).execute(plan)


def test_plan_records_routing_changes():
    old = _assignment(2, {1: {0}, 2: {0}})
    new = _assignment(2, {1: {0}, 2: {1}})
    plan = plan_migration(old.partitions_of, new)
    assert plan.changes == [(TupleId("account", (2,)), frozenset({1}))]


def test_split_execution_copies_then_drops(bank_database):
    old = _assignment(2, {1: {0}, 2: {0}, 3: {0}, 4: {1}, 5: {1}})
    strategy = LookupTablePartitioning(2, old, "hash")
    cluster = Cluster.from_database(bank_database, strategy)
    new = _assignment(2, {2: {1}})
    plan = plan_migration(strategy.partitions_for_tuple, new)
    migrator = LiveMigrator(cluster)
    report = migrator.execute_copies(plan)
    # Dually resident between the phases: both placements answer reads.
    assert cluster.tuple_locations(TupleId("account", (2,))) == {0, 1}
    assert report.copies == 1 and report.drops == 0
    migrator.execute_drops(plan, report)
    assert cluster.tuple_locations(TupleId("account", (2,))) == {1}
    assert report.drops == 1


def test_apply_routing_delta_updates_live_table_in_place(bank_database):
    old = _assignment(2, {1: {0}, 2: {0}, 3: {0}, 4: {1}, 5: {1}})
    strategy = LookupTablePartitioning(2, old, "hash")
    cluster = Cluster.from_database(bank_database, strategy)
    router = Router(strategy, bank_database.schema, build_lookup_table(old))
    live_table = router.lookup_table
    new = _assignment(2, {2: {1}, 3: {0, 1}})
    plan = plan_migration(strategy.partitions_for_tuple, new)
    migrator = LiveMigrator(cluster)
    report = migrator.execute_copies(plan)
    migrator.apply_routing_delta(router, plan, report)
    # Same table object, only the changed entries re-written.
    assert router.lookup_table is live_table
    assert live_table.get(TupleId("account", (2,))) == {1}
    assert live_table.get(TupleId("account", (3,))) == {0, 1}
    assert live_table.get(TupleId("account", (1,))) == {0}
    # The deployed assignment tracks the delta too.
    assert strategy.assignment.partitions_of(TupleId("account", (2,))) == {1}
    assert report.lookup_swapped


def test_replayed_copies_report_skips_not_copies(bank_database):
    old = _assignment(2, {1: {0}, 2: {0}, 3: {0}, 4: {1}, 5: {1}})
    strategy = LookupTablePartitioning(2, old, "hash")
    cluster = Cluster.from_database(bank_database, strategy)
    plan = plan_migration(strategy.partitions_for_tuple, _assignment(2, {2: {1}}))
    migrator = LiveMigrator(cluster)
    migrator.execute_copies(plan)
    # Crash-retry between copies and drops: the replica already exists, so
    # the replay writes nothing and accounts a skip (and no write messages).
    report = migrator.execute_copies(plan)
    assert report.copies == 0
    assert report.skipped == 1
    assert report.messages == 2  # the source read only
