"""Unit tests for the SLO-aware migration pacer."""

from __future__ import annotations

import pytest

from repro.online.controller import MigrationPacer, PacingOptions


def _pacer(**overrides):
    defaults = dict(
        abort_rate_budget=0.10,
        p99_latency_budget=100.0,
        min_samples=8,
        max_steps=16,
        throttled_steps=4,
        backoff_initial=1,
        backoff_max=8,
    )
    defaults.update(overrides)
    return MigrationPacer(PacingOptions(**defaults))


def _feed(pacer, latency=10.0, aborted=False, count=1):
    for _ in range(count):
        pacer.record(latency, aborted=aborted)


def test_options_validation():
    with pytest.raises(ValueError):
        PacingOptions(abort_rate_budget=1.5)
    with pytest.raises(ValueError):
        PacingOptions(max_steps=0)
    with pytest.raises(ValueError):
        PacingOptions(pressure_ratio=1.2)


def test_full_budget_before_min_samples():
    pacer = _pacer()
    # Even all-aborted traffic is ignored until min_samples accumulate:
    # a couple of early failures must not stall the migration.
    _feed(pacer, aborted=True, count=4)
    assert pacer.plan_steps() == 16
    assert pacer.pauses == 0


def test_healthy_traffic_gets_max_steps():
    pacer = _pacer()
    _feed(pacer, latency=10.0, count=32)
    assert pacer.plan_steps() == 16
    assert pacer.proceeds == 1


def test_abort_rate_over_budget_pauses_with_backoff():
    pacer = _pacer(backoff_initial=2, backoff_max=8)
    _feed(pacer, latency=10.0, count=20)
    _feed(pacer, aborted=True, count=10)  # 10/30 >> 0.10
    # First over-budget tick pauses and schedules a 2-tick backoff window.
    assert pacer.plan_steps() == 0
    assert pacer.plan_steps() == 0
    assert pacer.plan_steps() == 0
    assert pacer.pauses == 3
    # Pressure persisted through the backoff, so the window doubled: the
    # re-evaluation paused again for 4 ticks (2 -> 4 -> 8, capped at 8).
    for _ in range(4):
        assert pacer.plan_steps() == 0


def test_resume_after_pressure_clears():
    pacer = _pacer(backoff_initial=1)
    _feed(pacer, latency=10.0, count=20)
    _feed(pacer, aborted=True, count=10)
    assert pacer.plan_steps() == 0  # paused
    assert pacer.plan_steps() == 0  # backoff tick
    # Healthy traffic slides the aborts out of the window.
    _feed(pacer, latency=10.0, count=300)
    assert pacer.plan_steps() == 16
    assert pacer.resumes == 1
    # Backoff reset: a fresh pause starts back at the initial window.
    _feed(pacer, aborted=True, count=40)
    assert pacer.plan_steps() == 0
    assert pacer.pauses >= 2


def test_latency_over_budget_pauses():
    pacer = _pacer()
    _feed(pacer, latency=500.0, count=32)  # p99 500 > budget 100
    assert pacer.plan_steps() == 0
    assert pacer.p99_latency() == 500.0


def test_latency_near_budget_throttles():
    pacer = _pacer()  # pressure_ratio default 0.75 -> near zone (75, 100]
    _feed(pacer, latency=90.0, count=32)
    assert pacer.plan_steps() == 4
    assert pacer.throttles == 1
    assert pacer.pauses == 0


def test_idle_tick_releases_a_stuck_pause():
    pacer = _pacer()
    _feed(pacer, aborted=True, count=32)
    assert pacer.plan_steps() == 0
    # Traffic ended with the window frozen over budget: without the idle
    # escape every future tick would pause forever.
    assert pacer.plan_steps(idle=True) == 16
    assert pacer.resumes == 1
    # Not sticky: live ticks against the still-bad window pause again.
    assert pacer.plan_steps() == 0


def test_no_budgets_means_no_pressure():
    pacer = MigrationPacer(PacingOptions())  # both budgets None
    _feed(pacer, latency=10_000.0, count=32)
    _feed(pacer, aborted=True, count=32)
    assert pacer.plan_steps() == PacingOptions().max_steps
    assert pacer.pauses == 0


def test_abort_rate_window_is_bounded():
    pacer = _pacer(abort_window=16)
    _feed(pacer, aborted=True, count=16)
    assert pacer.abort_rate() == 1.0
    _feed(pacer, latency=10.0, count=16)
    # The old aborts aged out of the 16-sample window entirely.
    assert pacer.abort_rate() == 0.0


def test_snapshot_reflects_window_and_decisions():
    pacer = _pacer()
    window = pacer.snapshot()
    # Before any traffic or planning: empty window, no budget decided yet.
    assert window.latency_samples == 0 and window.abort_samples == 0
    assert window.last_budget is None
    assert window.p99_latency_budget == 100.0
    assert window.abort_rate_budget == 0.10
    assert not window.paused

    _feed(pacer, latency=10.0, count=32)
    assert pacer.plan_steps() == 16
    window = pacer.snapshot()
    assert window.latency_samples == 32 and window.abort_samples == 32
    assert window.p99_latency == 10.0
    assert window.abort_rate == 0.0
    assert window.last_budget == 16
    assert (window.proceeds, window.throttles, window.pauses, window.resumes) == (1, 0, 0, 0)


def test_snapshot_tracks_pause_and_backoff():
    pacer = _pacer(backoff_initial=2)
    _feed(pacer, aborted=True, count=32)
    assert pacer.plan_steps() == 0
    window = pacer.snapshot()
    assert window.paused
    assert window.pause_remaining == 2
    # the stored backoff already doubled for the *next* pause
    assert window.backoff == 4
    assert window.pauses == 1
    assert window.last_budget == 0


def test_snapshot_is_read_only():
    import dataclasses

    import pytest

    pacer = _pacer()
    window = pacer.snapshot()
    with pytest.raises(dataclasses.FrozenInstanceError):
        window.paused = True
