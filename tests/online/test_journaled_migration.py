"""Crash-safety of the journaled migrator: kill at every record, then
resume to completion or cancel to rollback — the cluster must come out
consistent either way.

The scenario is a 12-tuple 2 -> 4 resize in ``flip_mode="swap"`` (the
elastic path: the hash modulus changes, every tuple is re-homed by
``i % k``), stepped in batches of 3 so the journal writes a record stream
long enough to kill at interesting points: mid-copy, at the dual-window
transition, at the flip, mid-drop, and at completion.  A seeded
``CoordinatorKill`` raises :class:`CoordinatorDeath` *after* the targeted
record was persisted — the crash model is persist-then-kill — so a fresh
migrator attached to the reloaded journal replays at most one idempotent
batch.
"""

from __future__ import annotations

import pytest

from repro.catalog.schema import Schema, Table, integer_column, string_column
from repro.catalog.tuples import TupleId
from repro.core.strategies import LookupTablePartitioning
from repro.distributed.cluster import Cluster
from repro.distributed.faults import CoordinatorDeath, CoordinatorKill, FaultPlan
from repro.engine.database import Database
from repro.graph.assignment import PartitionAssignment
from repro.online.migration import (
    JournaledMigrator,
    JournalFormatError,
    MemoryJournalSink,
    MigrationJournal,
    plan_migration,
)
from repro.routing.lookup import build_lookup_table
from repro.routing.router import Router

NUM_TUPLES = 12
OLD_K = 2
NEW_K = 4
BATCH = 3


def _tid(i: int) -> TupleId:
    return TupleId("users", (i,))


def _build():
    """A deployed 2-partition cluster plus the journal of its 4-way resize."""
    schema = Schema(
        "smoke",
        [
            Table(
                "users",
                [integer_column("id"), string_column("name")],
                primary_key=["id"],
            )
        ],
    )
    old = PartitionAssignment(OLD_K)
    for i in range(NUM_TUPLES):
        old.assign(_tid(i), {i % OLD_K})
    database = Database(schema)
    for i in range(NUM_TUPLES):
        database.insert_row("users", {"id": i, "name": f"u{i}"})
    strategy = LookupTablePartitioning(OLD_K, old, "hash")
    cluster = Cluster.from_database(database, strategy)
    router = Router(strategy, schema, build_lookup_table(old))
    new = PartitionAssignment(NEW_K)
    for i in range(NUM_TUPLES):
        new.assign(_tid(i), {i % NEW_K})
    plan = plan_migration(strategy.partitions_for_tuple, new)
    journal = MigrationJournal.for_plan(
        plan,
        kind="resize",
        flip_mode="swap",
        old_num_partitions=OLD_K,
        new_num_partitions=NEW_K,
    )
    return cluster, router, journal


def _assert_consistent(cluster, router):
    """Every tuple stored exactly where the router says it lives."""
    locations = cluster.tuple_locations_map()
    assert set(locations) == {_tid(i) for i in range(NUM_TUPLES)}
    for tuple_id in locations:
        routed = router.strategy.partitions_for_tuple(tuple_id)
        if router.lookup_table is not None:
            entry = router.lookup_table.get(tuple_id)
            if entry is not None:
                routed = entry
        assert routed == locations[tuple_id], tuple_id


def _total_records() -> int:
    """Journal records a fault-free run of this scenario writes."""
    cluster, router, journal = _build()
    JournaledMigrator(
        cluster, router, journal, sink=MemoryJournalSink(), batch_size=BATCH
    ).run()
    assert journal.state == "completed"
    return journal.records


TOTAL_RECORDS = _total_records()


def test_forward_run_completes_and_is_consistent():
    cluster, router, journal = _build()
    sink = MemoryJournalSink()
    report = JournaledMigrator(
        cluster, router, journal, sink=sink, batch_size=BATCH
    ).run()
    assert journal.state == "completed"
    assert cluster.num_partitions == NEW_K
    assert report.copies == journal.plan.replicas_added
    assert report.drops == journal.plan.replicas_dropped
    _assert_consistent(cluster, router)
    # The sink holds the terminal snapshot, reloadable byte-identically.
    assert sink.load().dumps() == journal.dumps()


@pytest.mark.parametrize("kill_at", range(1, TOTAL_RECORDS + 1))
def test_kill_at_every_record_then_resume_completes(kill_at):
    cluster, router, journal = _build()
    sink = MemoryJournalSink()
    injector = FaultPlan(
        seed=7, coordinator_kills=(CoordinatorKill(at_record=kill_at),)
    ).build()
    migrator = JournaledMigrator(
        cluster, router, journal, sink=sink, batch_size=BATCH, injector=injector
    )
    with pytest.raises(CoordinatorDeath):
        migrator.run()
    # persist-then-kill: the record the kill targeted reached the sink.
    resumed = sink.load()
    assert resumed.records == kill_at
    JournaledMigrator(cluster, router, resumed, sink=sink, batch_size=BATCH).run()
    assert resumed.state == "completed"
    assert cluster.num_partitions == NEW_K
    _assert_consistent(cluster, router)


@pytest.mark.parametrize("kill_at", range(1, TOTAL_RECORDS + 1))
def test_kill_at_every_record_then_cancel_rolls_back(kill_at):
    cluster, router, journal = _build()
    sink = MemoryJournalSink()
    injector = FaultPlan(
        seed=7, coordinator_kills=(CoordinatorKill(at_record=kill_at),)
    ).build()
    migrator = JournaledMigrator(
        cluster, router, journal, sink=sink, batch_size=BATCH, injector=injector
    )
    with pytest.raises(CoordinatorDeath):
        migrator.run()
    resumed = sink.load()
    if resumed.is_terminal:
        # Killed at the final "completed" record: nothing left to cancel,
        # and cancelling a terminal journal must refuse.
        with pytest.raises(ValueError):
            JournaledMigrator(
                cluster, router, resumed, sink=sink, batch_size=BATCH
            ).cancel()
        return
    recovery = JournaledMigrator(cluster, router, resumed, sink=sink, batch_size=BATCH)
    recovery.cancel()
    recovery.run()
    assert resumed.state == "cancelled"
    # Rollback undoes everything: back at the old k, old placement.
    assert cluster.num_partitions == OLD_K
    _assert_consistent(cluster, router)


def test_cancel_before_any_step_rolls_back_cleanly():
    cluster, router, journal = _build()
    migrator = JournaledMigrator(
        cluster, router, journal, sink=MemoryJournalSink(), batch_size=BATCH
    )
    migrator.cancel()
    migrator.run()
    assert journal.state == "cancelled"
    assert cluster.num_partitions == OLD_K
    _assert_consistent(cluster, router)


def test_journal_serialisation_is_byte_deterministic():
    _, _, journal = _build()
    text = journal.dumps()
    reloaded = MigrationJournal.loads(text)
    assert reloaded.dumps() == text
    assert reloaded.plan.tuples_moved == journal.plan.tuples_moved
    assert reloaded.plan.replicas_added == journal.plan.replicas_added
    assert reloaded.state == journal.state


def test_journal_rejects_foreign_payloads():
    with pytest.raises(JournalFormatError):
        MigrationJournal.loads("{}")
    _, _, journal = _build()
    tampered = journal.dumps().replace(
        '"repro-migration-journal"', '"something-else"'
    )
    with pytest.raises(JournalFormatError):
        MigrationJournal.loads(tampered)


def test_resume_preserves_progress_cursors():
    cluster, router, journal = _build()
    sink = MemoryJournalSink()
    migrator = JournaledMigrator(
        cluster, router, journal, sink=sink, batch_size=BATCH
    )
    # Step past planning and one copy batch, then reload mid-flight.
    migrator.step()
    migrator.step()
    assert journal.state == "copying"
    snapshot = sink.load()
    assert snapshot.copies_done == journal.copies_done > 0
    assert snapshot.state == "copying"
    # A new migrator on the snapshot finishes from the cursor, not from zero.
    JournaledMigrator(cluster, router, snapshot, sink=sink, batch_size=BATCH).run()
    assert snapshot.state == "completed"
    _assert_consistent(cluster, router)
