"""FileJournalSink durability: write-fsync-rename-fsync and crash safety.

The sink's contract is that the journal at its final path is always a
complete snapshot — either the previous one or the new one, never a
truncated hybrid.  The fault-injection test simulates a crash *mid-write of
the tmp file* (contents truncated on disk, process dies before the rename)
and asserts the previous snapshot is untouched.
"""

from __future__ import annotations

import os

import pytest

from repro.online.migration import FileJournalSink

SNAPSHOT_1 = '{"snapshot": 1}\n'
SNAPSHOT_2 = '{"snapshot": 2}\n'


def test_write_replaces_atomically_and_consumes_tmp(tmp_path):
    sink = FileJournalSink(tmp_path / "plan.journal")
    sink.write(SNAPSHOT_1)
    sink.write(SNAPSHOT_2)
    assert sink.path.read_text(encoding="utf-8") == SNAPSHOT_2
    assert sink.writes == 2
    assert not sink.path.with_name(sink.path.name + ".tmp").exists()


def test_file_fsync_happens_before_rename(tmp_path, monkeypatch):
    """The tmp contents must be durable before the rename can publish them."""
    sink = FileJournalSink(tmp_path / "plan.journal")
    order: list[str] = []
    real_fsync, real_replace = os.fsync, os.replace

    def recording_fsync(fd):
        order.append("fsync")
        real_fsync(fd)

    def recording_replace(src, dst):
        order.append("rename")
        real_replace(src, dst)

    monkeypatch.setattr(os, "fsync", recording_fsync)
    monkeypatch.setattr(os, "replace", recording_replace)
    sink.write(SNAPSHOT_1)
    # file fsync, then the rename, then the directory fsync.
    assert order == ["fsync", "rename", "fsync"]


def test_crash_mid_tmp_write_preserves_previous_snapshot(tmp_path, monkeypatch):
    sink = FileJournalSink(tmp_path / "plan.journal")
    sink.write(SNAPSHOT_1)

    real_fsync = os.fsync

    def crash_during_tmp_fsync(fd):
        # Simulate the power cut the fsync exists to defend against: only a
        # prefix of the tmp file's contents reaches the disk, and the
        # process dies before the rename.
        os.ftruncate(fd, len(SNAPSHOT_2) // 2)
        raise OSError("simulated crash while flushing the tmp file")

    monkeypatch.setattr(os, "fsync", crash_during_tmp_fsync)
    with pytest.raises(OSError, match="simulated crash"):
        sink.write(SNAPSHOT_2)
    monkeypatch.setattr(os, "fsync", real_fsync)

    # The previous snapshot is byte-for-byte intact at the final path...
    assert sink.path.read_text(encoding="utf-8") == SNAPSHOT_1
    # ...while the torn write is confined to the tmp file.
    temp = sink.path.with_name(sink.path.name + ".tmp")
    assert temp.exists()
    assert temp.read_text(encoding="utf-8") == SNAPSHOT_2[: len(SNAPSHOT_2) // 2]

    # Recovery after restart: the next write overwrites the torn tmp file
    # and publishes cleanly.
    sink.write(SNAPSHOT_2)
    assert sink.path.read_text(encoding="utf-8") == SNAPSHOT_2
    assert not temp.exists()
