"""Unit tests for the incremental tuple-graph maintainer."""

from __future__ import annotations

import pytest

from repro.catalog.tuples import TupleId
from repro.online.maintainer import IncrementalGraphMaintainer, MaintainerOptions
from repro.sqlparse.ast import SelectStatement
from repro.workload.rwsets import access_from_tuple_sets
from repro.workload.trace import Transaction


def _access(keys, txn_id=0):
    transaction = Transaction((SelectStatement(("t",)),), transaction_id=txn_id)
    return access_from_tuple_sets(transaction, [TupleId("t", (key,)) for key in keys])


def test_nodes_created_on_first_sight_with_stable_ids():
    maintainer = IncrementalGraphMaintainer(MaintainerOptions(decay=1.0))
    maintainer.apply(_access([5, 1]))
    maintainer.apply(_access([1, 9]))
    assert maintainer.num_tuples == 3
    # Ids assigned in sorted-tuple order within each transaction.
    assert maintainer.node_of(TupleId("t", (1,))) == 0
    assert maintainer.node_of(TupleId("t", (5,))) == 1
    assert maintainer.node_of(TupleId("t", (9,))) == 2
    assert maintainer.tuple_of(2) == TupleId("t", (9,))
    assert maintainer.node_of(TupleId("t", (999,))) is None


def test_clique_edges_accumulate():
    maintainer = IncrementalGraphMaintainer(MaintainerOptions(decay=1.0))
    maintainer.apply(_access([1, 2, 3]))
    maintainer.apply(_access([1, 2]))
    graph = maintainer.graph
    node = maintainer.node_of
    one, two, three = node(TupleId("t", (1,))), node(TupleId("t", (2,))), node(TupleId("t", (3,)))
    assert graph.edge_weight(one, two) == 2.0
    assert graph.edge_weight(one, three) == 1.0
    assert graph.node_weights[one] == 2.0
    assert graph.node_weights[three] == 1.0


def test_apply_batch_matches_sequential_applies():
    accesses = [_access([1, 2, 3], 0), _access([2, 3], 1), _access([4, 1], 2)]
    sequential = IncrementalGraphMaintainer(MaintainerOptions(decay=1.0))
    for access in accesses:
        sequential.apply(access)
    sequential.advance_epoch()
    batched = IncrementalGraphMaintainer(MaintainerOptions(decay=1.0))
    batched.apply_batch(accesses)
    assert sequential.graph.node_weights == batched.graph.node_weights
    assert list(sequential.graph.edges()) == list(batched.graph.edges())
    assert sequential.tuples() == batched.tuples()


def test_decay_ages_weights():
    maintainer = IncrementalGraphMaintainer(MaintainerOptions(decay=0.5))
    maintainer.apply_batch([_access([1, 2])])
    assert maintainer.node_weight(0) == pytest.approx(0.5)
    assert maintainer.node_weight(1) == pytest.approx(0.5)
    assert maintainer.edge_weight(0, 1) == pytest.approx(0.5)
    maintainer.apply_batch([_access([1, 2])])
    # (0.5 + 1) * 0.5 after the second epoch.
    assert maintainer.edge_weight(0, 1) == pytest.approx(0.75)
    # The decay is lazy: freezing folds the scale into true weights.
    csr, _ = maintainer.freeze()
    assert csr.node_weights[0] == pytest.approx(0.75)


def test_lazy_decay_survives_renormalisation():
    maintainer = IncrementalGraphMaintainer(
        MaintainerOptions(decay=0.5, prune_threshold=0.0, prune_interval=1000)
    )
    maintainer.apply(_access([1, 2]))
    for _ in range(60):  # decay far past the renormalisation limit
        maintainer.advance_epoch()
    maintainer.apply(_access([3, 4]))
    assert maintainer.node_weight(2) == pytest.approx(1.0)
    assert maintainer.edge_weight(2, 3) == pytest.approx(1.0)
    assert maintainer.node_weight(0) == pytest.approx(2.0 ** -60, rel=1e-6)


def test_prune_drops_decayed_edges_but_keeps_nodes():
    options = MaintainerOptions(decay=0.5, prune_threshold=0.2, prune_interval=1)
    maintainer = IncrementalGraphMaintainer(options)
    maintainer.apply_batch([_access([1, 2])])
    assert maintainer.graph.num_edges == 1
    for _ in range(3):
        maintainer.advance_epoch()
    assert maintainer.graph.num_edges == 0
    assert maintainer.num_tuples == 2  # node ids stay stable


def test_blanket_transactions_skipped():
    options = MaintainerOptions(decay=1.0, blanket_transaction_threshold=3)
    maintainer = IncrementalGraphMaintainer(options)
    maintainer.apply(_access(list(range(10))))
    assert maintainer.num_tuples == 0
    assert maintainer.transactions_applied == 0


def test_freeze_returns_csr_and_mapping():
    maintainer = IncrementalGraphMaintainer(MaintainerOptions(decay=1.0))
    maintainer.apply(_access([1, 2]))
    csr, tuples = maintainer.freeze()
    assert csr.num_nodes == 2
    assert csr.num_edges == 1
    assert tuples == [TupleId("t", (1,)), TupleId("t", (2,))]
