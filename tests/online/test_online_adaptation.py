"""End-to-end drift test for the online adaptivity layer.

Acceptance criteria: after a rotating-hotspot drift, the budgeted online
adaptation restores the distributed-transaction fraction to within 10% of a
full re-partition while migrating at most 25% of the tuples the
from-scratch re-partition would move — byte-deterministically under a fixed
seed.
"""

from __future__ import annotations

import pytest

from repro.core.cost import evaluate_strategy
from repro.core.schism import Schism, SchismOptions, start_online
from repro.core.strategies import LookupTablePartitioning
from repro.online import MonitorOptions, OnlineOptions, RepartitionOptions
from repro.workload.rwsets import extract_access_trace
from repro.workloads import generate_rotating_hotspot

NUM_PARTITIONS = 4
SEED = 0


def _run_scenario():
    """Train on phase 0, drift to phase 1, adapt; return everything measured."""
    bundle = generate_rotating_hotspot(
        num_rows=1200,
        transactions_per_phase=800,
        num_phases=2,
        uniform_fraction=0.3,
        seed=SEED,
    )
    database = bundle.database
    offline = Schism(SchismOptions(num_partitions=NUM_PARTITIONS)).run(
        database, bundle.training
    )
    options = OnlineOptions(
        monitor=MonitorOptions(window_size=400, min_window_fill=100),
        repartition=RepartitionOptions(
            migration_cost_weight=0.25, imbalance=0.10, max_passes=12
        ),
        batch_size=100,
    )
    controller = start_online(offline, database, options)
    drifted = extract_access_trace(database, bundle.phases[1])
    observation = controller.observe(drifted, auto_adapt=False)
    before = evaluate_strategy(controller.strategy, drifted).distributed_fraction

    tuples = controller.maintainer.tuples()
    full = controller.preview_full_repartition()
    full_strategy = LookupTablePartitioning(
        NUM_PARTITIONS, controller.merged_assignment(tuples, full.assignment), "hash"
    )
    full_fraction = evaluate_strategy(full_strategy, drifted).distributed_fraction

    # The budget is the criterion itself: at most a quarter of what the
    # from-scratch re-partition would migrate.
    controller.options.repartition.migration_budget = 0.25 * full.migration_cost
    record = controller.adapt()
    after = evaluate_strategy(controller.strategy, drifted).distributed_fraction
    return {
        "observation": observation,
        "before": before,
        "after": after,
        "full_fraction": full_fraction,
        "full": full,
        "record": record,
        "controller": controller,
    }


@pytest.fixture(scope="module")
def scenario():
    return _run_scenario()


def test_drift_is_detected(scenario):
    reports = scenario["observation"].drift_reports
    assert any(report.drifted for report in reports)
    # The drift shows up as a distributed-fraction explosion.
    assert any(
        "distributed fraction" in reason
        for report in reports
        if report.drifted
        for reason in report.reasons
    )


def test_drift_degrades_placement(scenario):
    # Phase-1 groups were never co-located by the phase-0 training run.
    assert scenario["before"] > 0.5


def test_adaptation_restores_distributed_fraction(scenario):
    # Within 10% (absolute) of what the full re-partition achieves.
    assert scenario["after"] <= scenario["full_fraction"] + 0.10


def test_adaptation_moves_quarter_of_full_repartition(scenario):
    full_moved = scenario["full"].num_moved
    budgeted_moved = scenario["record"].repartition.num_moved
    assert full_moved > 0
    assert budgeted_moved <= 0.25 * full_moved
    # And the plan's physical movement matches the re-partitioner's delta.
    assert scenario["record"].plan.tuples_changed == budgeted_moved


def test_adaptation_reduces_cut(scenario):
    repartition = scenario["record"].repartition
    assert repartition.cut_after < repartition.cut_before * 0.2


def test_migration_executed_and_swapped(scenario):
    record = scenario["record"]
    assert record.migration.copies == len(record.plan.copies)
    assert record.migration.drops == len(record.plan.drops)
    assert record.migration.lookup_swapped
    assert record.migration.messages > 0
    # Copy-before-drop ordering: the progress trail never drops ahead of copies.
    steps = record.plan.steps
    first_drop = next((i for i, step in enumerate(steps) if step.action == "drop"), None)
    if first_drop is not None:
        assert all(step.action == "copy" for step in steps[:first_drop])
        assert all(step.action == "drop" for step in steps[first_drop:])


def test_cluster_consistent_with_lookup_table(scenario):
    controller = scenario["controller"]
    assignment = controller.strategy.assignment
    for tuple_id in assignment:
        placement = assignment.partitions_of(tuple_id)
        for partition in placement:
            storage = controller.cluster.database(partition).storage(tuple_id.table)
            assert tuple_id.key in storage
        # The router resolves through the swapped lookup table identically.
        assert controller.router.lookup_table.get(tuple_id) == placement


def test_monitor_rebaselined_after_adaptation(scenario):
    controller = scenario["controller"]
    stats = controller.monitor.window_stats()
    # The sliding window (pure phase-1 traffic) is served mostly locally now.
    assert stats.distributed_fraction < 0.15
    assert not controller.monitor.check_drift().drifted


def test_byte_deterministic_under_fixed_seed(scenario):
    rerun = _run_scenario()
    first, second = scenario, rerun
    assert first["before"] == second["before"]
    assert first["after"] == second["after"]
    assert first["full"].assignment == second["full"].assignment
    # The repartition result may be the singleton or the replica-set variant
    # depending on which replication candidates qualified; either way the
    # dataclass repr captures the complete outcome.
    assert repr(first["record"].repartition) == repr(second["record"].repartition)
    assert first["record"].plan.steps == second["record"].plan.steps
    placements_a = sorted(
        (tuple_id, tuple(sorted(placement)))
        for tuple_id, placement in first["controller"].strategy.assignment.placements.items()
    )
    placements_b = sorted(
        (tuple_id, tuple(sorted(placement)))
        for tuple_id, placement in second["controller"].strategy.assignment.placements.items()
    )
    assert repr(placements_a).encode() == repr(placements_b).encode()


def test_auto_adapt_triggers_on_drift():
    """The controller adapts on its own when left in auto mode."""
    bundle = generate_rotating_hotspot(
        num_rows=600,
        transactions_per_phase=300,
        num_phases=2,
        hot_window=150,
        seed=1,
    )
    database = bundle.database
    offline = Schism(SchismOptions(num_partitions=2)).run(database, bundle.training)
    options = OnlineOptions(
        monitor=MonitorOptions(window_size=200, min_window_fill=50),
        repartition=RepartitionOptions(migration_cost_weight=0.25, imbalance=0.10),
        batch_size=50,
    )
    controller = start_online(offline, database, options)
    drifted = extract_access_trace(database, bundle.phases[1])
    result = controller.observe(drifted, auto_adapt=True)
    assert result.adaptations
    first = result.adaptations[0]
    assert first.trigger is not None and first.trigger.drifted
    assert first.distributed_fraction_after < first.distributed_fraction_before
