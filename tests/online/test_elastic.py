"""Elastic partition scaling: grow/shrink round-trips keep every tuple reachable.

Acceptance criteria: the elastic policy demonstrably grows and shrinks
``num_partitions`` under load drift, the migration keeps zero tuples
unreachable (copy-before-drop per replica, wholesale routing swap), and a
grow/shrink round-trip conserves the stored tuple set exactly.
"""

from __future__ import annotations

import pytest

from repro.core.schism import Schism, SchismOptions, start_online
from repro.experiments.online_drift import run_elastic_scaling
from repro.online import ElasticOptions, MonitorOptions, OnlineOptions, RepartitionOptions
from repro.workload.rwsets import extract_access_trace
from repro.workloads import generate_rotating_hotspot


def _audit_reachability(controller) -> int:
    """Stored tuples the deployed routing cannot reach (must always be 0)."""
    unreachable = 0
    for tuple_id in controller.cluster.all_tuple_ids():
        placement = controller.strategy.partitions_for_tuple(tuple_id)
        if not any(controller.cluster.has_tuple(tuple_id, part) for part in placement):
            unreachable += 1
    return unreachable


@pytest.fixture(scope="module")
def controller():
    bundle = generate_rotating_hotspot(
        num_rows=400,
        transactions_per_phase=300,
        num_phases=2,
        hot_window=150,
        seed=0,
    )
    database = bundle.database
    offline = Schism(SchismOptions(num_partitions=2)).run(database, bundle.training)
    options = OnlineOptions(
        monitor=MonitorOptions(window_size=200, min_window_fill=50),
        repartition=RepartitionOptions(migration_cost_weight=0.25, imbalance=0.10),
        batch_size=50,
    )
    online = start_online(offline, database, options)
    online.observe(extract_access_trace(database, bundle.phases[1]), auto_adapt=False)
    return online


def test_grow_shrink_round_trip(controller):
    before_tuples = set(controller.cluster.all_tuple_ids())
    assert _audit_reachability(controller) == 0

    grow = controller.resize(4)
    assert grow.grew
    assert controller.num_partitions == 4
    assert controller.cluster.num_partitions == 4
    assert controller.router.num_partitions == 4
    assert _audit_reachability(controller) == 0
    # Growth spreads data onto the new partitions.
    assert grow.migration.copies > 0
    assert any(controller.cluster.row_counts()[part] > 0 for part in (2, 3))

    shrink = controller.resize(2)
    assert not shrink.grew
    assert controller.num_partitions == 2
    assert controller.cluster.num_partitions == 2
    assert len(controller.cluster.partition_databases) == 2
    assert _audit_reachability(controller) == 0
    # The round trip conserves the stored tuple set exactly.
    assert set(controller.cluster.all_tuple_ids()) == before_tuples


def test_resize_plans_copy_before_drop(controller):
    for record in controller.resizes:
        steps = record.plan.steps
        first_drop = next(
            (index for index, step in enumerate(steps) if step.action == "drop"), None
        )
        if first_drop is not None:
            assert all(step.action == "copy" for step in steps[:first_drop])
            assert all(step.action == "drop" for step in steps[first_drop:])
        # Per-replica accounting matches the executed work.
        assert record.plan.replicas_added == len(record.plan.copies)
        assert record.plan.replicas_dropped == len(record.plan.drops)


def test_resize_pins_implicitly_routed_tuples(controller):
    """After a resize, every stored tuple has an explicit lookup entry."""
    assignment = controller.strategy.assignment
    for tuple_id in controller.cluster.all_tuple_ids():
        assert tuple_id in assignment
    # The lookup table agrees entry by entry (exact backends enumerate via
    # entries()), and no entry points past the shrunken cluster.
    entries = dict(controller.router.lookup_table.entries())
    assert set(entries) == set(assignment.placements)
    for tuple_id, placement in entries.items():
        assert placement == assignment.partitions_of(tuple_id)
        assert all(part < controller.num_partitions for part in placement)


def test_monitor_follows_resize(controller):
    stats = controller.monitor.window_stats()
    assert controller.monitor.strategy is controller.router.strategy
    assert stats.transactions > 0


def test_resize_to_same_count_rejected(controller):
    with pytest.raises(ValueError):
        controller.resize(controller.num_partitions)


def test_stale_smaller_plan_rejected_without_shrink_flag(controller):
    """Only the shrink path may execute a plan for fewer partitions."""
    from repro.online.migration import LiveMigrator, MigrationPlan

    stale = MigrationPlan(controller.num_partitions - 1)
    migrator = LiveMigrator(controller.cluster)
    with pytest.raises(ValueError):
        migrator.execute_copies(stale)
    # The shrink path says so explicitly and is accepted.
    migrator.execute_copies(stale, allow_fewer_partitions=True)


def test_observe_never_resizes_on_its_constant_rate():
    """observe() re-chunks to a fixed batch size, so its rate signal is a
    constant ~batch_size; elastic proposals must be suppressed there or a
    healthy cluster would be resized to fit a config value."""
    bundle = generate_rotating_hotspot(
        num_rows=300,
        transactions_per_phase=200,
        num_phases=2,
        hot_window=150,
        seed=0,
    )
    database = bundle.database
    offline = Schism(SchismOptions(num_partitions=4)).run(database, bundle.training)
    options = OnlineOptions(
        monitor=MonitorOptions(window_size=200, min_window_fill=50),
        # With batch_size=50 the constant rate is ~50: ideal = 1 partition,
        # far below 4 * shrink_hysteresis — a live policy would shrink.
        elastic=ElasticOptions(enabled=True, target_rate_per_partition=50.0),
        batch_size=50,
    )
    online = start_online(offline, database, options)
    result = online.observe(extract_access_trace(database, bundle.phases[1]))
    assert result.resizes == []
    assert online.num_partitions == 4
    # The same feed through observe_batches (a real load signal) may resize.
    assert options.elastic.propose(50.0, 4) is not None


def test_elastic_policy_proposal_band():
    options = ElasticOptions(
        enabled=True,
        target_rate_per_partition=50.0,
        grow_hysteresis=1.3,
        shrink_hysteresis=0.6,
        min_partitions=2,
        max_partitions=8,
    )
    # Inside the dead band: no proposal.
    assert options.propose(rate=110.0, num_partitions=2) is None
    # Above the grow hysteresis: ceil(rate / target), clamped.
    assert options.propose(rate=300.0, num_partitions=2) == 6
    assert options.propose(rate=10_000.0, num_partitions=2) == 8
    # Below the shrink hysteresis: clamped at min_partitions.
    assert options.propose(rate=40.0, num_partitions=4) == 2
    assert options.propose(rate=10.0, num_partitions=2) is None  # already at min
    # Disabled policy never proposes.
    assert ElasticOptions(enabled=False).propose(rate=1e9, num_partitions=2) is None


def test_load_drift_grows_then_shrinks():
    """The end-to-end experiment: offered load rises then collapses."""
    report = run_elastic_scaling(
        num_rows=400,
        transactions_per_phase=600,
        high_batch=300,
        low_batch=30,
        target_rate_per_partition=50.0,
        seed=0,
    )
    assert report.grew
    assert report.shrank
    assert report.unreachable_tuples == 0
    assert report.partition_trajectory[0] > report.initial_partitions


# -- journaled sessions: crash/resume and cancel at the controller level -------------
def _fresh_controller(k=2):
    bundle = generate_rotating_hotspot(
        num_rows=300,
        transactions_per_phase=200,
        num_phases=1,
        hot_window=150,
        seed=3,
    )
    offline = Schism(SchismOptions(num_partitions=k)).run(bundle.database, bundle.training)
    options = OnlineOptions(
        monitor=MonitorOptions(window_size=200, min_window_fill=50),
        repartition=RepartitionOptions(migration_cost_weight=0.25, imbalance=0.10),
        batch_size=50,
    )
    return start_online(offline, bundle.database, options)


def test_begin_resize_session_survives_coordinator_death():
    from repro.distributed.faults import CoordinatorDeath, CoordinatorKill, FaultPlan
    from repro.online.migration import MemoryJournalSink

    controller = _fresh_controller()
    before_tuples = set(controller.cluster.all_tuple_ids())
    sink = MemoryJournalSink()
    injector = FaultPlan(
        seed=1, coordinator_kills=(CoordinatorKill(at_record=2),)
    ).build()
    session = controller.begin_resize(4, sink=sink, injector=injector, batch_size=16)
    with pytest.raises(CoordinatorDeath):
        session.run_to_completion()
    assert controller.resizes == []  # nothing recorded for the dead attempt

    resumed = controller.attach_session(sink.load(), sink=sink)
    record = resumed.run_to_completion()
    assert record is not None
    assert record.repartition is None  # planning context died with the crash
    assert controller.num_partitions == 4
    assert controller.monitor.strategy is controller.router.strategy
    assert _audit_reachability(controller) == 0
    assert set(controller.cluster.all_tuple_ids()) == before_tuples
    assert controller.resizes == [record]


def test_begin_resize_session_cancel_rolls_back():
    controller = _fresh_controller()
    before_tuples = set(controller.cluster.all_tuple_ids())
    session = controller.begin_resize(4, batch_size=16)
    # A few batches in (cluster already grown), change of plans: cancel.
    for _ in range(3):
        session.tick()
    assert controller.cluster.num_partitions == 4
    session.cancel()
    record = session.run_to_completion()
    assert record is None  # cancelled resizes record nothing
    assert session.journal.state == "cancelled"
    assert controller.num_partitions == 2
    assert controller.cluster.num_partitions == 2
    assert _audit_reachability(controller) == 0
    assert set(controller.cluster.all_tuple_ids()) == before_tuples
    assert controller.resizes == []
