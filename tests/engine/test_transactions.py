"""Tests for the lock manager."""

import pytest

from repro.catalog.tuples import TupleId
from repro.engine.transactions import LockConflict, LockManager, LockMode


@pytest.fixture
def manager() -> LockManager:
    return LockManager()


ROW = TupleId("account", (1,))
OTHER = TupleId("account", (2,))


def test_shared_locks_are_compatible(manager):
    manager.acquire("t1", ROW, LockMode.SHARED)
    manager.acquire("t2", ROW, LockMode.SHARED)
    assert manager.holders(ROW) == {"t1", "t2"}


def test_exclusive_conflicts_with_shared(manager):
    manager.acquire("t1", ROW, LockMode.SHARED)
    manager.acquire("t2", ROW, LockMode.SHARED)
    with pytest.raises(LockConflict):
        manager.acquire("t1", ROW, LockMode.EXCLUSIVE)


def test_exclusive_conflicts_with_exclusive(manager):
    manager.acquire("t1", ROW, LockMode.EXCLUSIVE)
    with pytest.raises(LockConflict):
        manager.acquire("t2", ROW, LockMode.EXCLUSIVE)


def test_upgrade_by_sole_holder(manager):
    manager.acquire("t1", ROW, LockMode.SHARED)
    manager.acquire("t1", ROW, LockMode.EXCLUSIVE)
    with pytest.raises(LockConflict):
        manager.acquire("t2", ROW, LockMode.SHARED)


def test_reentrant_acquisition(manager):
    manager.acquire("t1", ROW, LockMode.EXCLUSIVE)
    manager.acquire("t1", ROW, LockMode.EXCLUSIVE)
    assert manager.holders(ROW) == {"t1"}


def test_release_all(manager):
    manager.acquire("t1", ROW, LockMode.EXCLUSIVE)
    manager.acquire("t1", OTHER, LockMode.SHARED)
    manager.release_all("t1")
    assert manager.locked_count() == 0
    manager.acquire("t2", ROW, LockMode.EXCLUSIVE)


def test_would_conflict(manager):
    manager.acquire("t1", ROW, LockMode.EXCLUSIVE)
    assert manager.would_conflict("t2", ROW, LockMode.SHARED)
    assert not manager.would_conflict("t1", ROW, LockMode.EXCLUSIVE)
    assert not manager.would_conflict("t2", OTHER, LockMode.SHARED)


def test_conflict_reports_holder(manager):
    manager.acquire("t1", ROW, LockMode.EXCLUSIVE)
    try:
        manager.acquire("t2", ROW, LockMode.SHARED)
    except LockConflict as error:
        assert error.holder == "t1"
        assert error.tuple_id == ROW
    else:  # pragma: no cover - the acquire must raise
        pytest.fail("expected LockConflict")
