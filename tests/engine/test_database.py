"""Tests for the Database facade."""

import pytest

from repro.catalog.tuples import TupleId


def test_row_count_and_tuple_ids(bank_database):
    assert bank_database.row_count() == 5
    assert bank_database.row_count("account") == 5
    assert len(bank_database.all_tuple_ids()) == 5
    assert len(bank_database.all_tuple_ids("account")) == 5


def test_primary_key_indexed_by_default(bank_database):
    storage = bank_database.storage("account")
    assert "id" in storage.indexed_columns


def test_get_row_and_byte_size(bank_database):
    tuple_id = TupleId("account", (1,))
    assert bank_database.get_row(tuple_id)["name"] == "carlo"
    assert bank_database.tuple_byte_size(tuple_id) == bank_database.table("account").row_byte_size
    assert bank_database.total_byte_size() == 5 * bank_database.table("account").row_byte_size


def test_unknown_table_raises(bank_database):
    with pytest.raises(KeyError):
        bank_database.storage("missing")


def test_load_rows(bank_database):
    inserted = bank_database.load_rows(
        "account",
        [{"id": 100 + i, "name": f"bulk{i}", "bal": 0} for i in range(3)],
    )
    assert inserted == 3
    assert bank_database.row_count() == 8


def test_create_index(bank_database):
    bank_database.create_index("account", "name")
    assert "name" in bank_database.storage("account").indexed_columns
