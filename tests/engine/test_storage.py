"""Tests for table storage."""

import pytest

from repro.catalog.schema import Table, integer_column, string_column
from repro.catalog.tuples import TupleId
from repro.engine.storage import DuplicateKeyError, MissingRowError, TableStorage


@pytest.fixture
def storage() -> TableStorage:
    table = Table(
        "account",
        [integer_column("id"), string_column("name"), integer_column("bal")],
        ["id"],
    )
    store = TableStorage(table)
    for i in range(5):
        store.insert({"id": i, "name": f"user{i}", "bal": i * 100})
    return store


def test_insert_returns_tuple_id(storage):
    tuple_id = storage.insert({"id": 10, "name": "new", "bal": 1})
    assert tuple_id == TupleId("account", (10,))
    assert len(storage) == 6


def test_duplicate_key_rejected(storage):
    with pytest.raises(DuplicateKeyError):
        storage.insert({"id": 0, "name": "dup", "bal": 0})


def test_get_returns_copy(storage):
    row = storage.get((1,))
    row["bal"] = 999_999
    assert storage.get((1,))["bal"] == 100


def test_update_literal_and_delta(storage):
    storage.update((2,), {"bal": 500})
    assert storage.get((2,))["bal"] == 500
    storage.update((2,), {"bal": ("delta", -100)})
    assert storage.get((2,))["bal"] == 400


def test_update_missing_row(storage):
    with pytest.raises(MissingRowError):
        storage.update((99,), {"bal": 1})


def test_delete(storage):
    storage.delete((3,))
    assert (3,) not in storage
    with pytest.raises(MissingRowError):
        storage.delete((3,))


def test_secondary_index_lookup(storage):
    storage.create_index("name")
    assert storage.lookup_equal("name", "user4") == [(4,)]
    storage.update((4,), {"name": "renamed"})
    assert storage.lookup_equal("name", "user4") == []
    assert storage.lookup_equal("name", "renamed") == [(4,)]


def test_index_backfill_and_delete_maintenance(storage):
    storage.create_index("bal")
    assert storage.lookup_equal("bal", 200) == [(2,)]
    storage.delete((2,))
    assert storage.lookup_equal("bal", 200) == []


def test_index_on_unknown_column(storage):
    with pytest.raises(KeyError):
        storage.create_index("missing")


def test_scan_and_tuple_ids(storage):
    rich = storage.scan(lambda row: row["bal"] >= 300)
    assert {key for key, _row in rich} == {(3,), (4,)}
    assert len(storage.tuple_ids()) == 5


def test_byte_size(storage):
    assert storage.byte_size == 5 * storage.table.row_byte_size


def test_validation_of_rows(storage):
    with pytest.raises(ValueError):
        storage.insert({"id": 11, "name": "x"})
    with pytest.raises(TypeError):
        storage.insert({"id": 12, "name": 5, "bal": 0})
