"""Tests for statement execution and read/write-set extraction."""

from repro.catalog.tuples import TupleId
from repro.sqlparse.ast import (
    ColumnRef,
    DeleteStatement,
    InsertStatement,
    JoinCondition,
    SelectStatement,
    UpdateStatement,
    between,
    conj,
    eq,
    in_list,
)


class TestSelect:
    def test_primary_key_lookup(self, bank_database):
        result = bank_database.execute(SelectStatement(("account",), where=eq("id", 2)))
        assert len(result.rows) == 1
        assert result.read_set == {TupleId("account", (2,))}
        assert result.write_set == set()

    def test_in_list_read_set(self, bank_database):
        result = bank_database.execute(SelectStatement(("account",), where=in_list("id", [1, 3])))
        assert result.read_set == {TupleId("account", (1,)), TupleId("account", (3,))}

    def test_range_scan(self, bank_database):
        result = bank_database.execute(SelectStatement(("account",), where=between("id", 2, 4)))
        assert {row["id"] for row in result.rows} == {2, 3, 4}

    def test_non_key_predicate_scan(self, bank_database):
        statement = SelectStatement(("account",), where=eq("name", "carlo"))
        result = bank_database.execute(statement)
        assert result.read_set == {TupleId("account", (1,))}

    def test_limit(self, bank_database):
        result = bank_database.execute(SelectStatement(("account",), limit=2))
        assert len(result.rows) == 2

    def test_projection(self, bank_database):
        statement = SelectStatement(("account",), columns=(ColumnRef("name"),), where=eq("id", 1))
        result = bank_database.execute(statement)
        assert result.rows == [{"name": "carlo"}]

    def test_no_match_empty(self, bank_database):
        result = bank_database.execute(SelectStatement(("account",), where=eq("id", 99)))
        assert result.rows == [] and result.read_set == set()


class TestJoin:
    def test_self_join_reads_both_sides(self, bank_database):
        statement = SelectStatement(
            ("account",),
            where=eq("id", 1),
        )
        single = bank_database.execute(statement)
        join = SelectStatement(
            ("account", "account"),
            where=conj(
                JoinCondition(ColumnRef("id", "account"), ColumnRef("id", "account")),
                eq("id", 1),
            ),
        )
        result = bank_database.execute(join)
        assert single.read_set <= result.read_set


class TestWrites:
    def test_insert(self, bank_database):
        statement = InsertStatement("account", {"id": 9, "name": "newbie", "bal": 5})
        result = bank_database.execute(statement)
        assert result.write_set == {TupleId("account", (9,))}
        assert bank_database.get_row(TupleId("account", (9,)))["name"] == "newbie"

    def test_update_delta(self, bank_database):
        statement = UpdateStatement("account", {"bal": ("delta", -1000)}, where=eq("name", "carlo"))
        result = bank_database.execute(statement)
        assert result.write_set == {TupleId("account", (1,))}
        assert bank_database.get_row(TupleId("account", (1,)))["bal"] == 79_000

    def test_update_by_range_touches_multiple(self, bank_database):
        from repro.sqlparse.ast import Comparison

        statement = UpdateStatement(
            "account", {"bal": ("delta", 1)}, where=Comparison(ColumnRef("bal"), "<", 100_000)
        )
        result = bank_database.execute(statement)
        assert len(result.write_set) == 4

    def test_delete(self, bank_database):
        statement = DeleteStatement("account", where=eq("id", 5))
        result = bank_database.execute(statement)
        assert result.write_set == {TupleId("account", (5,))}
        assert bank_database.get_row(TupleId("account", (5,))) is None

    def test_sql_text_execution(self, bank_database):
        result = bank_database.execute("SELECT * FROM account WHERE id = 4")
        assert result.read_set == {TupleId("account", (4,))}


class TestTransactions:
    def test_execute_transaction_merges_sets(self, bank_database):
        statements = [
            SelectStatement(("account",), where=eq("id", 1)),
            UpdateStatement("account", {"bal": 0}, where=eq("id", 2)),
        ]
        result = bank_database.execute_transaction(statements)
        assert TupleId("account", (1,)) in result.read_set
        assert TupleId("account", (2,)) in result.write_set
