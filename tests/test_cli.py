"""Smoke tests for the ``python -m repro`` CLI (run/deploy/diff/bench)."""

import pytest

from repro.catalog.tuples import TupleId
from repro.cli import BENCH_EXPERIMENTS, WORKLOADS, main
from repro.pipeline import PartitionPlan


def test_run_writes_a_loadable_plan(tmp_path, capsys):
    out = tmp_path / "plan.json"
    code = main([
        "run", "--workload", "simplecount", "--partitions", "4",
        "--scale", "0.2", "--out", str(out),
    ])
    assert code == 0
    assert out.exists()
    plan = PartitionPlan.load(out)
    assert plan.num_partitions == 4
    assert len(plan) > 0
    output = capsys.readouterr().out
    assert "partition plan v1" in output
    assert "wrote" in output


def test_diff_identical_plans_reports_zero_moves(tmp_path, capsys):
    out = tmp_path / "plan.json"
    assert main([
        "run", "--workload", "simplecount", "--partitions", "2",
        "--scale", "0.2", "--out", str(out),
    ]) == 0
    capsys.readouterr()
    code = main(["diff", str(out), str(out), "--fail-on-change"])
    assert code == 0
    assert "identical: 0 moves" in capsys.readouterr().out


def test_diff_fail_on_change_exits_nonzero(tmp_path, capsys):
    old = PartitionPlan(2, {TupleId("t", (1,)): frozenset({0})})
    new = PartitionPlan(2, {TupleId("t", (1,)): frozenset({1})})
    old.save(tmp_path / "old.json")
    new.save(tmp_path / "new.json")
    assert main(["diff", str(tmp_path / "old.json"), str(tmp_path / "new.json")]) == 0
    code = main([
        "diff", str(tmp_path / "old.json"), str(tmp_path / "new.json"),
        "--fail-on-change",
    ])
    assert code == 1
    assert "tuples moved: 1" in capsys.readouterr().out


def test_deploy_streams_and_exports(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    live_path = tmp_path / "live.json"
    assert main([
        "run", "--workload", "simplecount", "--partitions", "2",
        "--scale", "0.2", "--out", str(plan_path),
    ]) == 0
    code = main([
        "deploy", str(plan_path), "--workload", "simplecount",
        "--scale", "0.2", "--export", str(live_path),
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "materialised 2 partitions" in output
    assert "streamed" in output
    exported = PartitionPlan.load(live_path)
    deployed = PartitionPlan.load(plan_path)
    # No adaptation ran (--adapt not passed): the live export is the plan.
    assert deployed.diff(exported).tuples_moved == 0


def test_bench_figure1_prints_table(capsys):
    assert main(["bench", "--experiment", "figure1"]) == 0
    assert "Figure 1" in capsys.readouterr().out


def test_unknown_workload_is_a_clean_error():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "nope", "--partitions", "2"])


def test_registries_cover_the_advertised_surface():
    assert {"simplecount", "tpcc", "tpce", "epinions", "ycsb-a", "ycsb-e", "random"} <= set(
        WORKLOADS
    )
    assert {"figure1", "figure4", "figure5", "figure6", "table1", "online-drift"} <= set(
        BENCH_EXPERIMENTS
    )


def test_run_metrics_out_is_schema_valid_and_byte_deterministic(tmp_path, capsys):
    import json

    first = tmp_path / "m1.json"
    second = tmp_path / "m2.json"
    for out in (first, second):
        assert main([
            "run", "--workload", "simplecount", "--partitions", "2",
            "--scale", "0.2", "--metrics-out", str(out),
        ]) == 0
    assert first.read_bytes() == second.read_bytes()
    snapshot = json.loads(first.read_text())
    assert snapshot["format"] == "repro-metrics"
    families = snapshot["families"]
    assert "pipeline.stage_runs" in families
    assert "partition.phases" in families
    # wall-clock families never reach the exported snapshot
    assert "pipeline.stage_seconds" not in families


def test_metrics_out_leaves_no_telemetry_installed(tmp_path):
    from repro.obs import get_telemetry

    assert main([
        "run", "--workload", "simplecount", "--partitions", "2",
        "--scale", "0.2", "--metrics-out", str(tmp_path / "m.json"),
    ]) == 0
    assert not get_telemetry().enabled


def _write_journal(
    tmp_path, state="copying", copies_done=1, backend="simulated", migration_id="mig"
):
    from repro.catalog.tuples import TupleId
    from repro.online.migration import MigrationJournal, MigrationPlan, MigrationStep

    plan = MigrationPlan(4)
    plan.previous = [(TupleId("t", (i,)), frozenset({0})) for i in range(2)]
    plan.changes = [(TupleId("t", (i,)), frozenset({1})) for i in range(2)]
    plan.copies = [MigrationStep("copy", TupleId("t", (i,)), 0, 1) for i in range(2)]
    plan.drops = [MigrationStep("drop", TupleId("t", (i,)), 0) for i in range(2)]
    plan.tuples_changed = 2
    journal = MigrationJournal.for_plan(
        plan, kind="resize", flip_mode="delta",
        old_num_partitions=2, new_num_partitions=4,
        backend=backend, migration_id=migration_id,
    )
    journal.state = state
    journal.copies_done = copies_done
    journal.records = 3
    path = tmp_path / "plan.json.journal"
    path.write_text(journal.dumps(), encoding="utf-8")
    return path


def test_status_renders_a_journal_file(tmp_path, capsys):
    path = _write_journal(tmp_path)
    assert main(["status", str(path)]) == 0
    output = capsys.readouterr().out
    assert "migration resize (2 -> 4 partitions, flip=delta)" in output
    assert "state: copying" in output
    assert "[>] copying" in output and "1/2 copies" in output


def test_status_renders_storage_backend_counters(tmp_path, capsys):
    """A storage-backed journal names the real backend, not the simulation."""
    path = _write_journal(tmp_path, backend="storage", migration_id="resize-2to4")
    assert main(["status", str(path)]) == 0
    output = capsys.readouterr().out
    assert "backend: storage (SQLite partition workers)" in output
    assert "migration id resize-2to4" in output
    assert "1/2 rows copied across partitions" in output
    assert "0/2 stale rows dropped" in output


def test_status_simulated_journal_has_no_backend_line(tmp_path, capsys):
    path = _write_journal(tmp_path)  # backend="simulated"
    assert main(["status", str(path)]) == 0
    output = capsys.readouterr().out
    assert "backend:" not in output
    assert "1/2 copies" in output


def test_status_falls_back_to_the_sibling_journal(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    assert main([
        "run", "--workload", "simplecount", "--partitions", "2",
        "--scale", "0.2", "--out", str(plan_path),
    ]) == 0
    capsys.readouterr()
    _write_journal(tmp_path)  # writes plan.json.journal
    assert main(["status", str(plan_path)]) == 0
    assert "state: copying" in capsys.readouterr().out


def test_status_without_a_journal_is_a_clean_error(tmp_path):
    plan_path = tmp_path / "plan.json"
    assert main([
        "run", "--workload", "simplecount", "--partitions", "2",
        "--scale", "0.2", "--out", str(plan_path),
    ]) == 0
    with pytest.raises(SystemExit, match="no journal"):
        main(["status", str(plan_path)])
    with pytest.raises(SystemExit, match="no such file"):
        main(["status", str(tmp_path / "missing.journal")])


def test_journal_inspect_renders_a_timeline(tmp_path, capsys):
    path = _write_journal(tmp_path, state="completed", copies_done=2)
    assert main(["journal", "inspect", str(path)]) == 0
    output = capsys.readouterr().out
    assert "journal: resize migration, 2 -> 4 partitions" in output
    assert "1. planned: journal opened" in output
    assert "current state: completed" in output


def test_status_with_unreadable_sibling_journal_is_a_clean_error(tmp_path):
    plan_path = tmp_path / "plan.json"
    assert main([
        "run", "--workload", "simplecount", "--partitions", "2",
        "--scale", "0.2", "--out", str(plan_path),
    ]) == 0
    (tmp_path / "plan.json.journal").write_text("not json at all", encoding="utf-8")
    with pytest.raises(SystemExit, match="no journal found"):
        main(["status", str(plan_path)])


def test_deploy_sqlite_rejects_in_memory_only_flags(tmp_path):
    plan_path = tmp_path / "plan.json"
    assert main([
        "run", "--workload", "simplecount", "--partitions", "2",
        "--scale", "0.2", "--out", str(plan_path),
    ]) == 0
    with pytest.raises(SystemExit, match="in-memory backend only"):
        main([
            "deploy", str(plan_path), "--workload", "simplecount",
            "--scale", "0.2", "--storage", "sqlite",
            "--export", str(tmp_path / "live.json"),
        ])


def test_deploy_sqlite_rejects_nonpositive_resize(tmp_path):
    plan_path = tmp_path / "plan.json"
    assert main([
        "run", "--workload", "simplecount", "--partitions", "2",
        "--scale", "0.2", "--out", str(plan_path),
    ]) == 0
    with pytest.raises(SystemExit, match="--resize must be a positive"):
        main([
            "deploy", str(plan_path), "--workload", "simplecount",
            "--scale", "0.2", "--storage", "sqlite", "--resize", "0",
        ])


@pytest.mark.storage
@pytest.mark.slow
def test_deploy_sqlite_resize_migrates_live(tmp_path, capsys):
    """`deploy --storage sqlite --resize K` runs the journaled migration
    under the streaming workload and leaves a loadable journal behind."""
    plan_path = tmp_path / "plan.json"
    assert main([
        "run", "--workload", "simplecount", "--partitions", "2",
        "--scale", "0.2", "--out", str(plan_path),
    ]) == 0
    capsys.readouterr()
    storage_dir = tmp_path / "cluster"
    code = main([
        "deploy", str(plan_path), "--workload", "simplecount",
        "--scale", "0.2", "--storage", "sqlite",
        "--storage-dir", str(storage_dir), "--clients", "2", "--resize", "4",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "live resize 2 -> 4 partitions" in output
    assert "resize 2 -> 4 partitions completed" in output
    for partition in range(4):
        assert (storage_dir / f"partition-{partition}.sqlite").exists()
    capsys.readouterr()
    assert main(["status", str(storage_dir / "resize.journal")]) == 0
    status = capsys.readouterr().out
    assert "backend: storage (SQLite partition workers)" in status
    assert "state: completed" in status


def test_deploy_sqlite_streams_the_workload(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    assert main([
        "run", "--workload", "simplecount", "--partitions", "2",
        "--scale", "0.2", "--out", str(plan_path),
    ]) == 0
    capsys.readouterr()
    storage_dir = tmp_path / "cluster"
    code = main([
        "deploy", str(plan_path), "--workload", "simplecount",
        "--scale", "0.2", "--storage", "sqlite",
        "--storage-dir", str(storage_dir), "--clients", "2",
        "--timeout-ms", "1000", "--max-retries", "4", "--backoff-base-ms", "10",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "materialised 2 SQLite partitions" in output
    assert "retry policy: timeout 1000 ms, 4 retries" in output
    assert "0 aborted" in output
    # the files are real and stay behind when --storage-dir is explicit.
    assert (storage_dir / "partition-0.sqlite").exists()
    assert (storage_dir / "partition-1.sqlite").exists()
