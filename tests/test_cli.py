"""Smoke tests for the ``python -m repro`` CLI (run/deploy/diff/bench)."""

import pytest

from repro.catalog.tuples import TupleId
from repro.cli import BENCH_EXPERIMENTS, WORKLOADS, main
from repro.pipeline import PartitionPlan


def test_run_writes_a_loadable_plan(tmp_path, capsys):
    out = tmp_path / "plan.json"
    code = main([
        "run", "--workload", "simplecount", "--partitions", "4",
        "--scale", "0.2", "--out", str(out),
    ])
    assert code == 0
    assert out.exists()
    plan = PartitionPlan.load(out)
    assert plan.num_partitions == 4
    assert len(plan) > 0
    output = capsys.readouterr().out
    assert "partition plan v1" in output
    assert "wrote" in output


def test_diff_identical_plans_reports_zero_moves(tmp_path, capsys):
    out = tmp_path / "plan.json"
    assert main([
        "run", "--workload", "simplecount", "--partitions", "2",
        "--scale", "0.2", "--out", str(out),
    ]) == 0
    capsys.readouterr()
    code = main(["diff", str(out), str(out), "--fail-on-change"])
    assert code == 0
    assert "identical: 0 moves" in capsys.readouterr().out


def test_diff_fail_on_change_exits_nonzero(tmp_path, capsys):
    old = PartitionPlan(2, {TupleId("t", (1,)): frozenset({0})})
    new = PartitionPlan(2, {TupleId("t", (1,)): frozenset({1})})
    old.save(tmp_path / "old.json")
    new.save(tmp_path / "new.json")
    assert main(["diff", str(tmp_path / "old.json"), str(tmp_path / "new.json")]) == 0
    code = main([
        "diff", str(tmp_path / "old.json"), str(tmp_path / "new.json"),
        "--fail-on-change",
    ])
    assert code == 1
    assert "tuples moved: 1" in capsys.readouterr().out


def test_deploy_streams_and_exports(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    live_path = tmp_path / "live.json"
    assert main([
        "run", "--workload", "simplecount", "--partitions", "2",
        "--scale", "0.2", "--out", str(plan_path),
    ]) == 0
    code = main([
        "deploy", str(plan_path), "--workload", "simplecount",
        "--scale", "0.2", "--export", str(live_path),
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "materialised 2 partitions" in output
    assert "streamed" in output
    exported = PartitionPlan.load(live_path)
    deployed = PartitionPlan.load(plan_path)
    # No adaptation ran (--adapt not passed): the live export is the plan.
    assert deployed.diff(exported).tuples_moved == 0


def test_bench_figure1_prints_table(capsys):
    assert main(["bench", "--experiment", "figure1"]) == 0
    assert "Figure 1" in capsys.readouterr().out


def test_unknown_workload_is_a_clean_error():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "nope", "--partitions", "2"])


def test_registries_cover_the_advertised_surface():
    assert {"simplecount", "tpcc", "tpce", "epinions", "ycsb-a", "ycsb-e", "random"} <= set(
        WORKLOADS
    )
    assert {"figure1", "figure4", "figure5", "figure6", "table1", "online-drift"} <= set(
        BENCH_EXPERIMENTS
    )
