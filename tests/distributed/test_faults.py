"""Unit tests for the seeded fault injector and its coordinator integration."""

from __future__ import annotations

import pytest

from repro.distributed.faults import (
    CoordinatorDeath,
    CoordinatorKill,
    FaultPlan,
    MessageDropped,
    NodeCrash,
    NodeUnavailable,
)


def test_plan_validates_rates():
    with pytest.raises(ValueError):
        FaultPlan(message_drop_rate=1.0)
    with pytest.raises(ValueError):
        FaultPlan(message_delay_rate=-0.1)


def test_node_crash_window_covers_exact_ticks():
    injector = FaultPlan(
        node_crashes=(NodeCrash(partition=1, at_tick=5, duration=3),)
    ).build()
    for _ in range(5):
        assert injector.node_available(1)
        injector.advance()
    # ticks 5, 6, 7: down.
    for _ in range(3):
        assert not injector.node_available(1)
        assert injector.crashed_partitions() == frozenset({1})
        with pytest.raises(NodeUnavailable):
            injector.check_available(1)
        # the other partition stays up throughout.
        injector.check_available(0)
        injector.advance()
    assert injector.node_available(1)
    assert injector.statistics.unavailability_hits == 3


def test_message_draws_are_seed_deterministic():
    plan = FaultPlan(seed=42, message_drop_rate=0.3, message_delay_rate=0.2)

    def draw_sequence():
        injector = plan.build()
        outcomes = []
        for _ in range(200):
            try:
                outcomes.append(injector.deliver())
            except MessageDropped:
                outcomes.append("dropped")
        return outcomes, injector.statistics.messages_dropped

    first, first_drops = draw_sequence()
    second, second_drops = draw_sequence()
    assert first == second
    assert first_drops == second_drops > 0


def test_different_seeds_draw_differently():
    def drops(seed):
        injector = FaultPlan(seed=seed, message_drop_rate=0.3).build()
        lost = 0
        for _ in range(200):
            try:
                injector.deliver()
            except MessageDropped:
                lost += 1
        return lost

    # Not a statistical test — just that the stream actually depends on the
    # seed (identical sequences would mean the fork is ignoring it).
    assert any(drops(seed) != drops(0) for seed in (1, 2, 3))


def test_coordinator_kill_fires_exactly_once():
    injector = FaultPlan(coordinator_kills=(CoordinatorKill(at_record=2),)).build()
    injector.on_journal_record("planned", 1)
    with pytest.raises(CoordinatorDeath) as excinfo:
        injector.on_journal_record("copying", 2)
    assert excinfo.value.record == 2
    assert excinfo.value.state == "copying"
    # The same record re-persisted after resume must NOT kill again.
    injector.on_journal_record("copying", 2)
    injector.on_journal_record("copying", 3)
    assert injector.statistics.coordinator_deaths == 1


def test_deliver_without_faults_is_free():
    injector = FaultPlan().build()
    assert injector.deliver() == 0.0
    assert injector.statistics.messages_dropped == 0
    assert injector.statistics.messages_delayed == 0
