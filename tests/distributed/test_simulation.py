"""Tests for the node cost model and the throughput simulator."""

import pytest

from repro.distributed.node import NodeCostModel
from repro.distributed.simulation import SimulationParameters, ThroughputSimulator


class TestNodeCostModel:
    def test_distributed_work_exceeds_local(self):
        node = NodeCostModel()
        assert node.distributed_transaction_work(2, 2) > node.local_transaction_work(2)

    def test_distributed_latency_exceeds_local(self):
        node = NodeCostModel()
        assert node.distributed_latency(2, 2) > node.local_latency(2)


class TestSimulator:
    def test_figure1_shape_throughput_halved(self):
        simulator = ThroughputSimulator()
        local = simulator.simulate_simplecount(5, distributed=False)
        remote = simulator.simulate_simplecount(5, distributed=True)
        ratio = remote.throughput_tps / local.throughput_tps
        assert 0.4 < ratio < 0.6
        assert remote.latency_ms > local.latency_ms * 1.5

    def test_single_server_no_distribution_penalty(self):
        simulator = ThroughputSimulator()
        local = simulator.simulate_simplecount(1, distributed=False)
        remote = simulator.simulate_simplecount(1, distributed=True)
        assert local.throughput_tps == remote.throughput_tps

    def test_throughput_scales_with_servers(self):
        simulator = ThroughputSimulator()
        one = simulator.simulate_simplecount(1, distributed=False)
        four = simulator.simulate_simplecount(4, distributed=False)
        assert 3.5 < four.throughput_tps / one.throughput_tps <= 4.01

    def test_contention_bound_binds_for_few_warehouses(self):
        simulator = ThroughputSimulator()
        contended = simulator.simulate_tpcc(8, total_warehouses=16, distributed_fraction=0.12)
        roomy = simulator.simulate_tpcc(8, total_warehouses=128, distributed_fraction=0.12)
        assert contended.throughput_tps < roomy.throughput_tps
        assert contended.bottleneck == "contention"
        assert roomy.bottleneck in ("cpu", "clients")

    def test_tpcc_scaleup_is_nearly_linear(self):
        simulator = ThroughputSimulator()
        one = simulator.simulate_tpcc(1, 16, 0.0)
        eight = simulator.simulate_tpcc(8, 128, 0.12)
        speedup = eight.throughput_tps / one.throughput_tps
        assert 6.5 < speedup < 8.5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SimulationParameters(num_servers=0, num_clients=1, statements_per_transaction=1)
        with pytest.raises(ValueError):
            SimulationParameters(num_servers=1, num_clients=0, statements_per_transaction=1)
        with pytest.raises(ValueError):
            SimulationParameters(
                num_servers=1, num_clients=1, statements_per_transaction=1, distributed_fraction=2.0
            )

    def test_describe(self):
        simulator = ThroughputSimulator()
        result = simulator.simulate_simplecount(2, distributed=False)
        assert "tps" in result.describe()
