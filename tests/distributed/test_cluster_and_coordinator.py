"""Tests for the cluster materialisation and the 2PC coordinator."""

import pytest

from repro.core.strategies import CompositePartitioning, FullReplication, range_on, replicate
from repro.distributed.cluster import Cluster
from repro.distributed.coordinator import TwoPhaseCommitCoordinator
from repro.routing.router import Router
from repro.sqlparse.ast import SelectStatement, UpdateStatement, eq
from repro.workload.trace import Transaction, Workload


def range_strategy(k=2):
    return CompositePartitioning(k, {"account": range_on("id", [2])})


def test_cluster_materialisation(bank_database):
    cluster = Cluster.from_database(bank_database, range_strategy())
    assert cluster.num_partitions == 2
    assert sum(cluster.row_counts()) == 5
    assert cluster.database(0).row_count() == 2  # ids 1, 2
    assert cluster.database(1).row_count() == 3  # ids 3, 4, 5


def test_cluster_replication_copies_everywhere(bank_database):
    cluster = Cluster.from_database(bank_database, FullReplication(3))
    assert cluster.row_counts() == [5, 5, 5]
    assert cluster.total_rows() == 15
    assert cluster.imbalance() == 1.0


def test_cluster_index_bounds(bank_database):
    cluster = Cluster.from_database(bank_database, range_strategy())
    with pytest.raises(IndexError):
        cluster.database(5)


def test_coordinator_single_partition_transaction(bank_database):
    strategy = range_strategy()
    cluster = Cluster.from_database(bank_database, strategy)
    coordinator = TwoPhaseCommitCoordinator(cluster, Router(strategy, bank_database.schema))
    transaction = Transaction((SelectStatement(("account",), where=eq("id", 1)),))
    outcome = coordinator.execute_transaction(transaction)
    assert outcome.participants == {0}
    assert not outcome.is_distributed
    # one statement (2 messages) + local commit (2 messages)
    assert outcome.messages == 4


def test_coordinator_distributed_transaction(bank_database):
    strategy = range_strategy()
    cluster = Cluster.from_database(bank_database, strategy)
    coordinator = TwoPhaseCommitCoordinator(cluster, Router(strategy, bank_database.schema))
    transaction = Transaction(
        (
            UpdateStatement("account", {"bal": ("delta", -1)}, where=eq("id", 1)),
            UpdateStatement("account", {"bal": ("delta", 1)}, where=eq("id", 5)),
        )
    )
    outcome = coordinator.execute_transaction(transaction)
    assert outcome.participants == {0, 1}
    assert outcome.is_distributed
    # two statements (4 messages) + 2PC over two participants (8 messages)
    assert outcome.messages == 12
    # Both partition databases applied their own update.
    assert cluster.database(0).get_row(next(iter(outcome.statement_results[0].write_set)))["bal"] == 79_999


def test_coordinator_statistics(bank_database):
    strategy = range_strategy()
    cluster = Cluster.from_database(bank_database, strategy)
    coordinator = TwoPhaseCommitCoordinator(cluster, Router(strategy, bank_database.schema))
    workload = Workload("w")
    workload.add_statements([SelectStatement(("account",), where=eq("id", 1))])
    workload.add_statements(
        [
            SelectStatement(("account",), where=eq("id", 1)),
            SelectStatement(("account",), where=eq("id", 5)),
        ]
    )
    coordinator.execute_workload(workload)
    stats = coordinator.statistics
    assert stats.transactions == 2
    assert stats.distributed_transactions == 1
    assert stats.distributed_fraction == 0.5
    assert stats.mean_messages > 0


def test_coordinator_partition_mismatch(bank_database):
    cluster = Cluster.from_database(bank_database, range_strategy(2))
    router = Router(range_strategy(3), bank_database.schema)
    with pytest.raises(ValueError):
        TwoPhaseCommitCoordinator(cluster, router)


# -- 2PC message accounting (exercised heavily by live migration) --------------------
def test_coordinator_broadcast_statement_messages(bank_database):
    strategy = range_strategy()
    cluster = Cluster.from_database(bank_database, strategy)
    coordinator = TwoPhaseCommitCoordinator(cluster, Router(strategy, bank_database.schema))
    # No partitioning attribute pinned: the select is broadcast to both
    # partitions, and the transaction pays full 2PC.
    transaction = Transaction((SelectStatement(("account",), where=eq("name", "sam")),))
    outcome = coordinator.execute_transaction(transaction)
    assert outcome.participants == {0, 1}
    # one statement to 2 partitions (4 messages) + 2PC over 2 participants (8).
    assert outcome.messages == 12
    assert outcome.is_distributed


def test_coordinator_replicated_read_stays_local(bank_database):
    strategy = FullReplication(3)
    cluster = Cluster.from_database(bank_database, strategy)
    coordinator = TwoPhaseCommitCoordinator(cluster, Router(strategy, bank_database.schema))
    transaction = Transaction(
        (
            SelectStatement(("account",), where=eq("id", 1)),
            SelectStatement(("account",), where=eq("id", 5)),
        )
    )
    outcome = coordinator.execute_transaction(transaction)
    # Replica selection pins both reads to one replica: local commit.
    assert len(outcome.participants) == 1
    assert not outcome.is_distributed
    # two statements (2 each) + local commit (2).
    assert outcome.messages == 6


def test_coordinator_write_to_replicated_table_pays_full_2pc(bank_database):
    strategy = FullReplication(3)
    cluster = Cluster.from_database(bank_database, strategy)
    coordinator = TwoPhaseCommitCoordinator(cluster, Router(strategy, bank_database.schema))
    transaction = Transaction(
        (UpdateStatement("account", {"bal": ("delta", -1)}, where=eq("id", 1)),)
    )
    outcome = coordinator.execute_transaction(transaction)
    assert outcome.participants == {0, 1, 2}
    # one statement to 3 replicas (6 messages) + 2PC over 3 participants (12).
    assert outcome.messages == 18
    # Every replica applied the write.
    written = next(iter(outcome.statement_results[0].write_set))
    for partition in range(3):
        assert cluster.database(partition).get_row(written)["bal"] == 79_999


def test_coordinator_statistics_accumulate_message_totals(bank_database):
    strategy = range_strategy()
    cluster = Cluster.from_database(bank_database, strategy)
    coordinator = TwoPhaseCommitCoordinator(cluster, Router(strategy, bank_database.schema))
    workload = Workload("w")
    workload.add_statements([SelectStatement(("account",), where=eq("id", 1))])  # 4 msgs
    workload.add_statements(
        [
            SelectStatement(("account",), where=eq("id", 1)),
            SelectStatement(("account",), where=eq("id", 5)),
        ]
    )  # 4 + 8 = 12 msgs
    outcomes = coordinator.execute_workload(workload)
    stats = coordinator.statistics
    assert stats.total_messages == sum(outcome.messages for outcome in outcomes) == 16
    assert stats.mean_messages == 8.0
    assert stats.total_participants == 3
    assert stats.distributed_fraction == 0.5


def test_coordinator_empty_statistics_are_zero():
    from repro.distributed.coordinator import CoordinatorStatistics

    stats = CoordinatorStatistics()
    assert stats.distributed_fraction == 0.0
    assert stats.mean_messages == 0.0


# -- tuple-level cluster operations (live migration substrate) -----------------------
def test_cluster_copy_and_drop_tuple(bank_database):
    from repro.catalog.tuples import TupleId

    cluster = Cluster.from_database(bank_database, range_strategy())
    tuple_id = TupleId("account", (1,))
    assert cluster.tuple_locations(tuple_id) == {0}
    assert cluster.copy_tuple(tuple_id, 0, 1) > 0
    assert cluster.tuple_locations(tuple_id) == {0, 1}
    # Copy is idempotent: the second call writes nothing.
    assert cluster.copy_tuple(tuple_id, 0, 1) == 0
    assert cluster.drop_tuple(tuple_id, 0)
    assert cluster.tuple_locations(tuple_id) == {1}
    assert not cluster.drop_tuple(tuple_id, 0)  # already gone
    # Copying a vanished row reports None.
    assert cluster.copy_tuple(TupleId("account", (99,)), 0, 1) is None


# -- fault-injected execution (resilience substrate) ---------------------------------
def _faulty_coordinator(bank_database, plan):
    strategy = range_strategy()
    cluster = Cluster.from_database(bank_database, strategy)
    router = Router(strategy, bank_database.schema)
    return cluster, TwoPhaseCommitCoordinator(cluster, router, plan.build())


def _transfer():
    return Transaction(
        (
            UpdateStatement("account", {"bal": ("delta", -1)}, where=eq("id", 1)),
            UpdateStatement("account", {"bal": ("delta", 1)}, where=eq("id", 5)),
        )
    )


def test_aborted_attempt_has_zero_side_effects(bank_database):
    from repro.distributed.faults import FaultPlan, NodeCrash

    cluster, coordinator = _faulty_coordinator(
        bank_database,
        FaultPlan(node_crashes=(NodeCrash(partition=1, at_tick=0, duration=100),)),
    )
    before = {0: cluster.database(0).row_count(), 1: cluster.database(1).row_count()}
    balance = cluster.database(0).get_row(
        next(iter(cluster.database(0).all_tuple_ids("account")))
    )["bal"]
    outcome = coordinator.execute_transaction(_transfer())
    assert outcome.aborted
    assert "unavailable" in outcome.abort_reason
    # Zero side effects: neither partition was touched, not even the live one.
    assert cluster.database(0).row_count() == before[0]
    assert cluster.database(1).row_count() == before[1]
    assert cluster.database(0).get_row(
        next(iter(cluster.database(0).all_tuple_ids("account")))
    )["bal"] == balance
    assert coordinator.statistics.aborts == 1
    assert coordinator.statistics.transactions == 0


def test_abort_message_accounting_is_exact(bank_database):
    from repro.distributed.faults import FaultPlan, NodeCrash

    _, coordinator = _faulty_coordinator(
        bank_database,
        FaultPlan(node_crashes=(NodeCrash(partition=1, at_tick=0, duration=100),)),
    )
    outcome = coordinator.execute_transaction(_transfer())
    assert outcome.aborted
    # Prepare failed: one request/response pair per participant, no commit.
    assert outcome.messages == 2 * len(outcome.participants)
    assert outcome.latency == float(outcome.messages)


def test_retries_commit_after_crash_window_expires(bank_database):
    from repro.distributed.faults import FaultPlan, NodeCrash

    cluster, coordinator = _faulty_coordinator(
        bank_database,
        # Down for ticks 0..3; the clock advances *before* each attempt's
        # fault draw, so attempts run at ticks 1, 2, 3 (abort) and 4 (commit).
        FaultPlan(node_crashes=(NodeCrash(partition=1, at_tick=0, duration=4),)),
    )
    observed = []
    outcome = coordinator.execute_with_retries(_transfer(), observer=observed.append)
    assert not outcome.aborted
    # The observer saw every attempt, aborted retries included.
    assert [o.aborted for o in observed] == [True, True, True, False]
    assert coordinator.statistics.aborts == 3
    assert coordinator.statistics.transactions == 1


def test_retries_exhaust_against_permanent_outage(bank_database):
    from repro.distributed.faults import FaultPlan, NodeCrash

    _, coordinator = _faulty_coordinator(
        bank_database,
        FaultPlan(node_crashes=(NodeCrash(partition=1, at_tick=0, duration=10_000),)),
    )
    outcome = coordinator.execute_with_retries(_transfer(), max_attempts=3)
    assert outcome.aborted
    assert coordinator.statistics.aborts == 3
