"""Tests for the final validation phase."""

from repro.catalog.tuples import TupleId
from repro.core.strategies import (
    CompositePartitioning,
    FullReplication,
    HashPartitioning,
    range_on,
)
from repro.core.validation import validate_strategies
from repro.sqlparse.ast import SelectStatement, eq
from repro.workload.rwsets import AccessTrace, access_from_tuple_sets
from repro.workload.trace import Transaction


def make_trace(pairs, writes=()):
    trace = AccessTrace("validation")
    for index, pair in enumerate(pairs):
        statement = SelectStatement(("t",), where=eq("id", pair[0]))
        transaction = Transaction((statement,), transaction_id=index)
        write_ids = writes[index] if index < len(writes) else ()
        trace.accesses.append(
            access_from_tuple_sets(
                transaction,
                [TupleId("t", (i,)) for i in pair],
                [TupleId("t", (i,)) for i in write_ids],
            )
        )
    return trace


def row_cache(max_id=400):
    return {TupleId("t", (i,)): {"id": i} for i in range(max_id)}


def block_strategy(k, block=100):
    strategy = CompositePartitioning(
        k, {"t": range_on("id", [block * (i + 1) - 1 for i in range(k - 1)])}
    )
    strategy.name = "manual-range"
    return strategy


def test_best_strategy_wins():
    # Pairs always within a block: the range strategy is perfect, hashing is not.
    trace = make_trace([(i, i + 1) for i in range(0, 200, 10)])
    result = validate_strategies(
        [block_strategy(2), HashPartitioning(2)], trace, row_cache=row_cache()
    )
    assert result.recommendation == "manual-range"
    assert result.winner_report.distributed_fraction == 0.0


def test_simplicity_tie_break_prefers_hash():
    # Single-tuple transactions: every non-replicated strategy scores zero.
    trace = make_trace([(i,) for i in range(100)])
    result = validate_strategies(
        [block_strategy(2), HashPartitioning(2), FullReplication(2)],
        trace,
        row_cache=row_cache(),
    )
    assert result.recommendation == "hashing"


def test_replication_scores_zero_on_reads_but_concentrates_load():
    # Pairs crossing blocks: hashing distributes them; replication serves every
    # read locally (0% distributed) but concentrates all reads on one replica,
    # so the balance guard keeps it from being selected.
    trace = make_trace([(i, i + 100) for i in range(0, 100, 10)])
    result = validate_strategies(
        [HashPartitioning(2), FullReplication(2)], trace, row_cache=row_cache()
    )
    assert result.reports["replication"].distributed_fraction == 0.0
    assert result.reports["replication"].partition_load_imbalance() > 1.6
    assert result.recommendation == "hashing"


def test_imbalanced_candidate_rejected():
    # A "strategy" that puts every tuple on partition 0 has no distributed
    # transactions but is useless; the balance guard must reject it.
    everything_on_zero = CompositePartitioning(2, {"t": range_on("id", [10_000])})
    everything_on_zero.name = "degenerate"
    trace = make_trace([(i, i + 1) for i in range(0, 200, 10)])
    result = validate_strategies(
        [everything_on_zero, HashPartitioning(2)], trace, row_cache=row_cache()
    )
    assert result.recommendation == "hashing"


def test_wide_tie_tolerance_prefers_simpler_strategy():
    trace = make_trace([(i, i + 1) for i in range(0, 300, 3)])
    lookup_like = block_strategy(2)
    result = validate_strategies(
        [lookup_like, HashPartitioning(2)],
        trace,
        row_cache=row_cache(),
        tie_tolerance=1.0,  # absurdly wide: everything ties
    )
    # With everything tied the simplest (hashing, complexity 1) wins over the
    # range strategy (complexity 2).
    assert result.recommendation == "hashing"


def test_relative_tie_tolerance_breaks_near_ties():
    # Hashing scores marginally worse than the range strategy on a workload
    # where almost every pair crosses a block boundary; the relative tolerance
    # treats them as tied and the simpler hashing wins.
    trace = make_trace([(i, i + 100) for i in range(0, 99)])
    result = validate_strategies(
        [block_strategy(2), HashPartitioning(2)],
        trace,
        row_cache=row_cache(),
        relative_tie_tolerance=2.0,
    )
    assert result.recommendation == "hashing"


def test_reports_contain_all_candidates():
    trace = make_trace([(1, 2)])
    result = validate_strategies(
        [HashPartitioning(2), FullReplication(2)], trace, row_cache=row_cache()
    )
    assert set(result.reports) == {"hashing", "replication"}
    assert "selected" in result.describe()


def test_requires_candidates():
    import pytest

    with pytest.raises(ValueError):
        validate_strategies([], make_trace([(1,)]))
