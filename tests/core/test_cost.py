"""Tests for the distributed-transaction cost model."""

from repro.catalog.tuples import TupleId
from repro.core.cost import evaluate_strategy, transaction_partitions
from repro.core.strategies import (
    CompositePartitioning,
    FullReplication,
    HashPartitioning,
    range_on,
)
from repro.sqlparse.ast import SelectStatement, eq
from repro.workload.rwsets import AccessTrace, access_from_tuple_sets
from repro.workload.trace import Transaction


def make_access(read_ids, write_ids=()):
    statement = SelectStatement(("t",), where=eq("id", 0))
    transaction = Transaction((statement,))
    return access_from_tuple_sets(
        transaction,
        [TupleId("t", (i,)) for i in read_ids],
        [TupleId("t", (i,)) for i in write_ids],
    )


def block_strategy(num_partitions: int, block: int = 100) -> CompositePartitioning:
    return CompositePartitioning(
        num_partitions,
        {"t": range_on("id", [block * (i + 1) - 1 for i in range(num_partitions - 1)])},
    )


class TestTransactionPartitions:
    def test_single_partition_transaction(self):
        strategy = block_strategy(2)
        access = make_access([1, 2, 3])
        partitions = transaction_partitions(strategy, access, row_cache={
            TupleId("t", (i,)): {"id": i} for i in (1, 2, 3)
        })
        assert partitions == {0}

    def test_cross_partition_transaction(self):
        strategy = block_strategy(2)
        access = make_access([1, 150])
        partitions = transaction_partitions(strategy, access, row_cache={
            TupleId("t", (1,)): {"id": 1},
            TupleId("t", (150,)): {"id": 150},
        })
        assert partitions == {0, 1}

    def test_replicated_read_uses_one_partition(self):
        strategy = FullReplication(4)
        access = make_access([1, 2, 3])
        assert len(transaction_partitions(strategy, access)) == 1

    def test_replicated_write_touches_all(self):
        strategy = FullReplication(4)
        access = make_access([], write_ids=[1])
        assert transaction_partitions(strategy, access) == {0, 1, 2, 3}

    def test_read_prefers_partition_already_involved(self):
        # Write pins partition 1; the replicated read should co-locate there.
        strategy = FullReplication(3)
        access = make_access([2], write_ids=[])
        write_access = make_access([2], write_ids=[5])
        partitions = transaction_partitions(strategy, write_access)
        assert partitions == {0, 1, 2}  # the write dominates anyway


class TestEvaluateStrategy:
    def make_trace(self):
        trace = AccessTrace("test")
        trace.accesses.append(make_access([1, 2]))       # same block
        trace.accesses.append(make_access([1, 150]))     # crosses blocks
        trace.accesses.append(make_access([150, 199]))   # same block
        return trace

    def row_cache(self):
        return {TupleId("t", (i,)): {"id": i} for i in (1, 2, 150, 199)}

    def test_counts_and_fraction(self):
        report = evaluate_strategy(block_strategy(2), self.make_trace(), row_cache=self.row_cache())
        assert report.total_transactions == 3
        assert report.distributed_transactions == 1
        assert report.single_partition_transactions == 2
        assert abs(report.distributed_fraction - 1 / 3) < 1e-9
        assert report.mean_participants > 1.0

    def test_partition_counts(self):
        report = evaluate_strategy(block_strategy(2), self.make_trace(), row_cache=self.row_cache())
        assert report.partition_transaction_counts == [2, 2]
        assert report.partition_load_imbalance() == 1.0

    def test_empty_transactions_ignored(self):
        trace = self.make_trace()
        trace.accesses.append(make_access([]))
        report = evaluate_strategy(block_strategy(2), trace, row_cache=self.row_cache())
        assert report.empty_transactions == 1
        assert abs(report.distributed_fraction - 1 / 3) < 1e-9

    def test_hash_partitioning_splits_pairs(self):
        trace = AccessTrace("pairs")
        for i in range(0, 200, 2):
            trace.accesses.append(make_access([i, i + 1]))
        report = evaluate_strategy(HashPartitioning(2), trace)
        # Uniform random pairs land on the same of two partitions about half the time.
        assert 0.3 < report.distributed_fraction < 0.7

    def test_describe_contains_percentages(self):
        report = evaluate_strategy(block_strategy(2), self.make_trace(), row_cache=self.row_cache())
        assert "%" in report.describe()
