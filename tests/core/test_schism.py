"""Tests for the end-to-end Schism pipeline object."""

import pytest

from repro.core.schism import Schism, SchismOptions, run_schism
from repro.sqlparse.ast import SelectStatement, UpdateStatement, eq, in_list
from repro.utils.rng import SeededRng
from repro.workload.trace import Workload


def clustered_workload(num_rows_per_cluster: int = 50, num_clusters: int = 2, transactions: int = 200) -> Workload:
    """Transactions touch pairs of accounts from the same hidden cluster."""
    rng = SeededRng(0)
    workload = Workload("clustered")
    for _ in range(transactions):
        cluster = rng.randint(0, num_clusters - 1)
        base = cluster * num_rows_per_cluster
        first = base + rng.randint(0, num_rows_per_cluster - 1)
        second = base + rng.randint(0, num_rows_per_cluster - 1)
        workload.add_statements(
            [SelectStatement(("account",), where=in_list("id", sorted({first, second})))]
        )
    return workload


@pytest.fixture
def clustered_database(bank_schema):
    from repro.engine.database import Database

    database = Database(bank_schema)
    for account_id in range(100):
        database.insert_row("account", {"id": account_id, "name": f"user{account_id}", "bal": 0})
    return database


def test_pipeline_discovers_clusters(clustered_database):
    options = SchismOptions(num_partitions=2)
    result = Schism(options).run(clustered_database, clustered_workload())
    # The graph solution should make almost every transaction single-partition.
    assert result.reports["lookup-table"].distributed_fraction < 0.1
    # And the explanation should express it as a key range split around id 50.
    assert result.reports["range-predicates"].distributed_fraction < 0.15
    assert result.recommendation in ("range-predicates", "lookup-table")
    assert result.assignment.partition_tuple_counts()[0] > 0
    assert result.graph_cut >= 0
    assert result.timings.total > 0


def test_pipeline_with_test_workload(clustered_database):
    result = Schism(SchismOptions(num_partitions=2)).run(
        clustered_database,
        clustered_workload(transactions=150),
        test_workload=clustered_workload(transactions=50),
    )
    assert result.validation.winner_report.total_transactions == 50


def test_describe_mentions_graph_and_candidates(clustered_database):
    result = Schism(SchismOptions(num_partitions=2)).run(clustered_database, clustered_workload())
    text = result.describe()
    assert "graph:" in text
    assert "candidates:" in text


def test_run_schism_convenience(clustered_database):
    result = run_schism(clustered_database, clustered_workload(transactions=100), num_partitions=2)
    assert result.options.num_partitions == 2


def test_run_schism_conflicting_options(clustered_database):
    with pytest.raises(ValueError):
        run_schism(
            clustered_database,
            clustered_workload(transactions=10),
            num_partitions=3,
            options=SchismOptions(num_partitions=2),
        )


def test_invalid_options():
    with pytest.raises(ValueError):
        SchismOptions(num_partitions=0)
    with pytest.raises(ValueError):
        SchismOptions(num_partitions=2, lookup_default_policy="bogus")


def test_read_mostly_detection(clustered_database):
    read_only = clustered_workload(transactions=100)
    result = Schism(SchismOptions(num_partitions=2, lookup_default_policy="auto")).run(
        clustered_database, read_only
    )
    lookup = result.validation.strategies["lookup-table"]
    assert lookup.default_policy == "replicate"

    write_heavy = Workload("writes")
    rng = SeededRng(1)
    for _ in range(100):
        target = rng.randint(0, 99)
        write_heavy.add_statements(
            [UpdateStatement("account", {"bal": ("delta", 1)}, where=eq("id", target))]
        )
    result = Schism(SchismOptions(num_partitions=2, lookup_default_policy="auto")).run(
        clustered_database, write_heavy
    )
    assert result.validation.strategies["lookup-table"].default_policy == "hash"
