"""Tests for partitioning strategies."""

import pytest

from repro.catalog.tuples import TupleId
from repro.core.strategies import (
    CompositePartitioning,
    FullReplication,
    HashPartitioning,
    LookupTablePartitioning,
    RangePredicatePartitioning,
    RoundRobinPartitioning,
    hash_on,
    range_on,
    replicate,
    stable_hash,
)
from repro.explain.rules import PredicateRule, RuleCondition, RuleSet
from repro.graph.assignment import PartitionAssignment
from repro.sqlparse.predicates import AttributeCondition


def condition(column: str, value: object) -> AttributeCondition:
    return AttributeCondition(None, column, "=", value)


class TestStableHash:
    def test_deterministic_across_instances(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash("x") != stable_hash("y")


class TestHashPartitioning:
    def test_pk_hash_assigns_single_partition(self):
        strategy = HashPartitioning(4)
        placements = strategy.partitions_for_tuple(TupleId("t", (7,)))
        assert len(placements) == 1
        assert placements == strategy.partitions_for_tuple(TupleId("t", (7,)))

    def test_pk_hash_spreads_tuples(self):
        strategy = HashPartitioning(4)
        used = set()
        for key in range(100):
            used.update(strategy.partitions_for_tuple(TupleId("t", (key,))))
        assert used == {0, 1, 2, 3}

    def test_attribute_hash_colocates_across_tables(self):
        strategy = HashPartitioning(4, {"orders": ("w_id",), "stock": ("w_id",)})
        order = strategy.partitions_for_tuple(TupleId("orders", (9, 1)), {"w_id": 3})
        stock = strategy.partitions_for_tuple(TupleId("stock", (3, 55)), {"w_id": 3})
        assert order == stock

    def test_routing_by_conditions(self):
        strategy = HashPartitioning(4, {"stock": ("w_id",)})
        routed = strategy.partitions_for_conditions("stock", [condition("w_id", 3)])
        assert routed == strategy.partitions_for_tuple(TupleId("stock", (3, 1)), {"w_id": 3})
        assert strategy.partitions_for_conditions("stock", [condition("other", 3)]) is None
        assert HashPartitioning(4).partitions_for_conditions("stock", [condition("w_id", 3)]) is None


class TestRoundRobin:
    def test_cycles_through_partitions(self):
        strategy = RoundRobinPartitioning(3)
        placements = [strategy.partitions_for_tuple(TupleId("t", (i,))) for i in range(6)]
        assert [next(iter(p)) for p in placements] == [0, 1, 2, 0, 1, 2]

    def test_stable_for_same_tuple(self):
        strategy = RoundRobinPartitioning(3)
        first = strategy.partitions_for_tuple(TupleId("t", (1,)))
        again = strategy.partitions_for_tuple(TupleId("t", (1,)))
        assert first == again


class TestFullReplication:
    def test_all_partitions(self):
        strategy = FullReplication(5)
        assert strategy.partitions_for_tuple(TupleId("t", (1,))) == frozenset(range(5))
        assert strategy.partitions_for_conditions("t", []) == frozenset(range(5))


class TestRangePredicatePartitioning:
    def make_strategy(self, fallback: str = "replicate") -> RangePredicatePartitioning:
        rules = RuleSet(
            "stock",
            (
                PredicateRule((RuleCondition("s_w_id", "<=", 1),), "1", 10, 0.0),
                PredicateRule((RuleCondition("s_w_id", ">", 1),), "0", 10, 0.0),
            ),
            default_label="0",
            attributes=("s_w_id",),
        )
        return RangePredicatePartitioning(2, {"stock": rules}, fallback=fallback)

    def test_placement_follows_rules(self):
        strategy = self.make_strategy()
        assert strategy.partitions_for_tuple(TupleId("stock", (1, 5)), {"s_w_id": 1}) == {1}
        assert strategy.partitions_for_tuple(TupleId("stock", (2, 5)), {"s_w_id": 2}) == {0}

    def test_unknown_table_fallback(self):
        assert self.make_strategy("replicate").partitions_for_tuple(TupleId("other", (1,))) == {0, 1}
        assert len(self.make_strategy("hash").partitions_for_tuple(TupleId("other", (1,)))) == 1

    def test_routing(self):
        strategy = self.make_strategy()
        assert strategy.partitions_for_conditions("stock", [condition("s_w_id", 1)]) == {1}
        assert strategy.partitions_for_conditions("stock", [condition("s_i_id", 9)]) is None

    def test_invalid_fallback(self):
        with pytest.raises(ValueError):
            RangePredicatePartitioning(2, {}, fallback="bogus")


class TestLookupTablePartitioning:
    def make_assignment(self) -> PartitionAssignment:
        assignment = PartitionAssignment(2)
        assignment.assign(TupleId("t", (1,)), {0})
        assignment.assign(TupleId("t", (2,)), {0, 1})
        return assignment

    def test_known_tuples(self):
        strategy = LookupTablePartitioning(2, self.make_assignment())
        assert strategy.partitions_for_tuple(TupleId("t", (1,))) == {0}
        assert strategy.partitions_for_tuple(TupleId("t", (2,))) == {0, 1}

    def test_default_policies(self):
        hash_default = LookupTablePartitioning(2, self.make_assignment(), "hash")
        replicate_default = LookupTablePartitioning(2, self.make_assignment(), "replicate")
        unknown = TupleId("t", (99,))
        assert len(hash_default.partitions_for_tuple(unknown)) == 1
        assert replicate_default.partitions_for_tuple(unknown) == {0, 1}

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            LookupTablePartitioning(2, self.make_assignment(), "bogus")


class TestCompositePartitioning:
    def make_strategy(self) -> CompositePartitioning:
        return CompositePartitioning(
            2,
            {
                "warehouse": range_on("w_id", [1]),
                "item": replicate(),
                "customer": hash_on("c_w_id"),
            },
            name="manual",
        )

    def test_range_policy(self):
        strategy = self.make_strategy()
        assert strategy.partitions_for_tuple(TupleId("warehouse", (1,)), {"w_id": 1}) == {0}
        assert strategy.partitions_for_tuple(TupleId("warehouse", (2,)), {"w_id": 2}) == {1}

    def test_replicate_policy(self):
        assert self.make_strategy().partitions_for_tuple(TupleId("item", (5,))) == {0, 1}

    def test_hash_policy_uses_row_columns(self):
        strategy = self.make_strategy()
        first = strategy.partitions_for_tuple(TupleId("customer", (1, 1, 7)), {"c_w_id": 1})
        second = strategy.partitions_for_tuple(TupleId("customer", (1, 2, 9)), {"c_w_id": 1})
        assert first == second

    def test_condition_routing(self):
        strategy = self.make_strategy()
        assert strategy.partitions_for_conditions("item", []) == {0, 1}
        assert strategy.partitions_for_conditions("warehouse", [condition("w_id", 2)]) == {1}
        assert strategy.partitions_for_conditions("customer", [condition("c_id", 3)]) is None

    def test_default_policy_for_unlisted_table(self):
        strategy = self.make_strategy()
        placements = strategy.partitions_for_tuple(TupleId("unlisted", (3,)))
        assert len(placements) == 1


def test_num_partitions_must_be_positive():
    with pytest.raises(ValueError):
        HashPartitioning(0)
